
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linker/candidate_types.cc" "src/linker/CMakeFiles/kglink_linker.dir/candidate_types.cc.o" "gcc" "src/linker/CMakeFiles/kglink_linker.dir/candidate_types.cc.o.d"
  "/root/repo/src/linker/entity_linker.cc" "src/linker/CMakeFiles/kglink_linker.dir/entity_linker.cc.o" "gcc" "src/linker/CMakeFiles/kglink_linker.dir/entity_linker.cc.o.d"
  "/root/repo/src/linker/feature_sequence.cc" "src/linker/CMakeFiles/kglink_linker.dir/feature_sequence.cc.o" "gcc" "src/linker/CMakeFiles/kglink_linker.dir/feature_sequence.cc.o.d"
  "/root/repo/src/linker/pipeline.cc" "src/linker/CMakeFiles/kglink_linker.dir/pipeline.cc.o" "gcc" "src/linker/CMakeFiles/kglink_linker.dir/pipeline.cc.o.d"
  "/root/repo/src/linker/row_filter.cc" "src/linker/CMakeFiles/kglink_linker.dir/row_filter.cc.o" "gcc" "src/linker/CMakeFiles/kglink_linker.dir/row_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/kglink_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/kglink_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/kglink_search.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/kglink_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
