# Empty compiler generated dependencies file for kglink_linker.
# This may be replaced when dependencies are built.
