file(REMOVE_RECURSE
  "CMakeFiles/kglink_linker.dir/candidate_types.cc.o"
  "CMakeFiles/kglink_linker.dir/candidate_types.cc.o.d"
  "CMakeFiles/kglink_linker.dir/entity_linker.cc.o"
  "CMakeFiles/kglink_linker.dir/entity_linker.cc.o.d"
  "CMakeFiles/kglink_linker.dir/feature_sequence.cc.o"
  "CMakeFiles/kglink_linker.dir/feature_sequence.cc.o.d"
  "CMakeFiles/kglink_linker.dir/pipeline.cc.o"
  "CMakeFiles/kglink_linker.dir/pipeline.cc.o.d"
  "CMakeFiles/kglink_linker.dir/row_filter.cc.o"
  "CMakeFiles/kglink_linker.dir/row_filter.cc.o.d"
  "libkglink_linker.a"
  "libkglink_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kglink_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
