file(REMOVE_RECURSE
  "libkglink_linker.a"
)
