file(REMOVE_RECURSE
  "CMakeFiles/kglink_eval.dir/annotator.cc.o"
  "CMakeFiles/kglink_eval.dir/annotator.cc.o.d"
  "CMakeFiles/kglink_eval.dir/metrics.cc.o"
  "CMakeFiles/kglink_eval.dir/metrics.cc.o.d"
  "CMakeFiles/kglink_eval.dir/table_printer.cc.o"
  "CMakeFiles/kglink_eval.dir/table_printer.cc.o.d"
  "libkglink_eval.a"
  "libkglink_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kglink_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
