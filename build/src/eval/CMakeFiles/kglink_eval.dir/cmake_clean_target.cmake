file(REMOVE_RECURSE
  "libkglink_eval.a"
)
