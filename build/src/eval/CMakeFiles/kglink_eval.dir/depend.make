# Empty dependencies file for kglink_eval.
# This may be replaced when dependencies are built.
