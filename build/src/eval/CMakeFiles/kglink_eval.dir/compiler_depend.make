# Empty compiler generated dependencies file for kglink_eval.
# This may be replaced when dependencies are built.
