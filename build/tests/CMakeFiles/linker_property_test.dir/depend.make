# Empty dependencies file for linker_property_test.
# This may be replaced when dependencies are built.
