file(REMOVE_RECURSE
  "CMakeFiles/linker_property_test.dir/linker_property_test.cc.o"
  "CMakeFiles/linker_property_test.dir/linker_property_test.cc.o.d"
  "linker_property_test"
  "linker_property_test.pdb"
  "linker_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linker_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
