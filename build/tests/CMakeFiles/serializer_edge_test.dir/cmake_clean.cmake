file(REMOVE_RECURSE
  "CMakeFiles/serializer_edge_test.dir/serializer_edge_test.cc.o"
  "CMakeFiles/serializer_edge_test.dir/serializer_edge_test.cc.o.d"
  "serializer_edge_test"
  "serializer_edge_test.pdb"
  "serializer_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serializer_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
