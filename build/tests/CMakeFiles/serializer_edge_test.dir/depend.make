# Empty dependencies file for serializer_edge_test.
# This may be replaced when dependencies are built.
