# Empty compiler generated dependencies file for generator_noise_test.
# This may be replaced when dependencies are built.
