file(REMOVE_RECURSE
  "CMakeFiles/generator_noise_test.dir/generator_noise_test.cc.o"
  "CMakeFiles/generator_noise_test.dir/generator_noise_test.cc.o.d"
  "generator_noise_test"
  "generator_noise_test.pdb"
  "generator_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
