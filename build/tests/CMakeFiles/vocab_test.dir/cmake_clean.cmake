file(REMOVE_RECURSE
  "CMakeFiles/vocab_test.dir/vocab_test.cc.o"
  "CMakeFiles/vocab_test.dir/vocab_test.cc.o.d"
  "vocab_test"
  "vocab_test.pdb"
  "vocab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
