# Empty dependencies file for optim_loss_test.
# This may be replaced when dependencies are built.
