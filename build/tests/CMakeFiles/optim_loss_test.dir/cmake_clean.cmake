file(REMOVE_RECURSE
  "CMakeFiles/optim_loss_test.dir/optim_loss_test.cc.o"
  "CMakeFiles/optim_loss_test.dir/optim_loss_test.cc.o.d"
  "optim_loss_test"
  "optim_loss_test.pdb"
  "optim_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optim_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
