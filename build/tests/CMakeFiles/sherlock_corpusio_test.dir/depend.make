# Empty dependencies file for sherlock_corpusio_test.
# This may be replaced when dependencies are built.
