file(REMOVE_RECURSE
  "CMakeFiles/sherlock_corpusio_test.dir/sherlock_corpusio_test.cc.o"
  "CMakeFiles/sherlock_corpusio_test.dir/sherlock_corpusio_test.cc.o.d"
  "sherlock_corpusio_test"
  "sherlock_corpusio_test.pdb"
  "sherlock_corpusio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sherlock_corpusio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
