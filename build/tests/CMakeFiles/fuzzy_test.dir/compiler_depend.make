# Empty compiler generated dependencies file for fuzzy_test.
# This may be replaced when dependencies are built.
