file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_test.dir/fuzzy_test.cc.o"
  "CMakeFiles/fuzzy_test.dir/fuzzy_test.cc.o.d"
  "fuzzy_test"
  "fuzzy_test.pdb"
  "fuzzy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
