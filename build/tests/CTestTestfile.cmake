# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/layers_test[1]_include.cmake")
include("/root/repo/build/tests/optim_loss_test[1]_include.cmake")
include("/root/repo/build/tests/vocab_test[1]_include.cmake")
include("/root/repo/build/tests/kg_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/linker_test[1]_include.cmake")
include("/root/repo/build/tests/serializer_test[1]_include.cmake")
include("/root/repo/build/tests/annotator_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/linker_property_test[1]_include.cmake")
include("/root/repo/build/tests/nn_property_test[1]_include.cmake")
include("/root/repo/build/tests/sherlock_corpusio_test[1]_include.cmake")
include("/root/repo/build/tests/serializer_edge_test[1]_include.cmake")
include("/root/repo/build/tests/generator_noise_test[1]_include.cmake")
include("/root/repo/build/tests/fuzzy_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
