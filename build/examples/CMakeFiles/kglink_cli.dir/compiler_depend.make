# Empty compiler generated dependencies file for kglink_cli.
# This may be replaced when dependencies are built.
