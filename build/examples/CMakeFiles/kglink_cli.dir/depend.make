# Empty dependencies file for kglink_cli.
# This may be replaced when dependencies are built.
