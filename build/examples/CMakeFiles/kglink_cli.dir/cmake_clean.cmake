file(REMOVE_RECURSE
  "CMakeFiles/kglink_cli.dir/kglink_cli.cpp.o"
  "CMakeFiles/kglink_cli.dir/kglink_cli.cpp.o.d"
  "kglink_cli"
  "kglink_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kglink_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
