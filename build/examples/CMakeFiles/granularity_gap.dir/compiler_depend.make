# Empty compiler generated dependencies file for granularity_gap.
# This may be replaced when dependencies are built.
