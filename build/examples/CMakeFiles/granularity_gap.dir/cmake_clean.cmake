file(REMOVE_RECURSE
  "CMakeFiles/granularity_gap.dir/granularity_gap.cpp.o"
  "CMakeFiles/granularity_gap.dir/granularity_gap.cpp.o.d"
  "granularity_gap"
  "granularity_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
