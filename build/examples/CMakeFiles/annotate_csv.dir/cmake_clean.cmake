file(REMOVE_RECURSE
  "CMakeFiles/annotate_csv.dir/annotate_csv.cpp.o"
  "CMakeFiles/annotate_csv.dir/annotate_csv.cpp.o.d"
  "annotate_csv"
  "annotate_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
