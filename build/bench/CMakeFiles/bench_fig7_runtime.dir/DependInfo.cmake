
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_runtime.cc" "bench/CMakeFiles/bench_fig7_runtime.dir/bench_fig7_runtime.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_runtime.dir/bench_fig7_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/kglink_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kglink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/kglink_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kglink_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/kglink_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/kglink_search.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/kglink_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/kglink_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kglink_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/kglink_table.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kglink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
