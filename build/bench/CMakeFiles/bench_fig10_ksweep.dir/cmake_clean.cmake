file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ksweep.dir/bench_fig10_ksweep.cc.o"
  "CMakeFiles/bench_fig10_ksweep.dir/bench_fig10_ksweep.cc.o.d"
  "bench_fig10_ksweep"
  "bench_fig10_ksweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ksweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
