# Empty compiler generated dependencies file for bench_fig10_ksweep.
# This may be replaced when dependencies are built.
