file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sigma.dir/bench_fig8_sigma.cc.o"
  "CMakeFiles/bench_fig8_sigma.dir/bench_fig8_sigma.cc.o.d"
  "bench_fig8_sigma"
  "bench_fig8_sigma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sigma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
