file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dataeff.dir/bench_fig9_dataeff.cc.o"
  "CMakeFiles/bench_fig9_dataeff.dir/bench_fig9_dataeff.cc.o.d"
  "bench_fig9_dataeff"
  "bench_fig9_dataeff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dataeff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
