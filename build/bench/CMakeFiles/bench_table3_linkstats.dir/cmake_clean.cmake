file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_linkstats.dir/bench_table3_linkstats.cc.o"
  "CMakeFiles/bench_table3_linkstats.dir/bench_table3_linkstats.cc.o.d"
  "bench_table3_linkstats"
  "bench_table3_linkstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_linkstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
