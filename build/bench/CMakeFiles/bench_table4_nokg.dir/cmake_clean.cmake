file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_nokg.dir/bench_table4_nokg.cc.o"
  "CMakeFiles/bench_table4_nokg.dir/bench_table4_nokg.cc.o.d"
  "bench_table4_nokg"
  "bench_table4_nokg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_nokg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
