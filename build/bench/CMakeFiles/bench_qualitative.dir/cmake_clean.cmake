file(REMOVE_RECURSE
  "CMakeFiles/bench_qualitative.dir/bench_qualitative.cc.o"
  "CMakeFiles/bench_qualitative.dir/bench_qualitative.cc.o.d"
  "bench_qualitative"
  "bench_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
