file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_rowfilter.dir/bench_table5_rowfilter.cc.o"
  "CMakeFiles/bench_table5_rowfilter.dir/bench_table5_rowfilter.cc.o.d"
  "bench_table5_rowfilter"
  "bench_table5_rowfilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_rowfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
