file(REMOVE_RECURSE
  "CMakeFiles/kglink_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/kglink_bench_common.dir/bench_common.cc.o.d"
  "libkglink_bench_common.a"
  "libkglink_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kglink_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
