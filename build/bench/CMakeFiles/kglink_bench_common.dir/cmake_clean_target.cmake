file(REMOVE_RECURSE
  "libkglink_bench_common.a"
)
