# Empty compiler generated dependencies file for kglink_bench_common.
# This may be replaced when dependencies are built.
