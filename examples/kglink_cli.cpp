// kglink_cli — end-to-end command-line workflow around the library:
//
//   kglink_cli gen-data   <dir> [--style semtab|viznet] [--tables N]
//       generate a world + corpus; writes the corpus (CSV + manifest),
//       the KG (TSV) and the train/valid/test splits under <dir>.
//   kglink_cli train      <dir> --model <prefix> [--epochs N]
//       train KGLink on <dir>'s train/valid splits; saves the model.
//   kglink_cli eval       <dir> --model <prefix>
//       evaluate a saved model on <dir>'s test split.
//   kglink_cli annotate   <dir> --model <prefix> <file.csv>
//       annotate an arbitrary CSV with a saved model.
//
// The world/KG is regenerated deterministically from the seed recorded in
// <dir>/world.seed, so a saved model stays consistent with its KG.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "core/annotator.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "eval/explain_report.h"
#include "eval/metrics.h"
#include "obs/flight_recorder.h"
#include "obs/heap_profiler.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/provenance.h"
#include "obs/statsz.h"
#include "obs/trace.h"
#include "robust/fault_injector.h"
#include "search/search_engine.h"
#include "serve/annotation_service.h"
#include "serve/loadgen.h"
#include "store/snapshot_store.h"
#include "store/snapshot_writer.h"
#include "table/corpus_io.h"
#include "util/csv.h"
#include "util/deadline.h"

using namespace kglink;

namespace {

struct Args {
  std::string command;
  std::string dir;
  std::string model_prefix;
  std::string csv_path;
  std::string style = "semtab";
  std::string trace_path;    // --trace=FILE: Chrome trace-event JSON
  std::string metrics_path;  // --metrics=FILE: metrics snapshot JSON
  std::string explain_dir;   // --explain=DIR: provenance JSONL + report
  std::string statsz_path;   // --statsz=FILE: periodic status-page JSON
  std::string slow_log_path; // --slow-log=FILE: flight-recorder JSONL
  std::string profile_prefix;  // --profile=PREFIX: sampling profiler export
  int profile_hz = 997;        // --profile-hz N: sampling frequency
  bool heap_profile = false;   // --heap-profile: heap attribution
  int64_t statsz_interval_ms = 1000;  // --statsz-interval-ms N
  int64_t slo_ms = 0;        // --slo-ms N: served latency SLO target
  int64_t slow_ms = 0;       // --slow-ms N: flight-record threshold
  int64_t slow_every = 0;    // --slow-every N: also record 1-in-N
  std::string faults;        // --faults=site:prob[:latency_us],...
  uint64_t fault_seed = 42;  // --fault-seed=N
  // Snapshot store (train / eval / annotate; --save-snapshot also in
  // gen-data). --snapshot serves the KG + BM25 index straight out of a
  // mapped snapshot file; a bad file quarantines and falls back to the
  // deterministic rebuild.
  std::string snapshot_path;         // --snapshot=FILE
  std::string save_snapshot_path;    // --save-snapshot=FILE
  std::string reload_snapshot_path;  // --reload-snapshot=FILE (served eval)
  std::string snapshot_validate = "eager";  // --snapshot-validate=eager|lazy
  uint64_t snapshot_generation = 1;  // --snapshot-generation=N
  int tables = 160;
  int epochs = 8;
  uint64_t seed = 42;
  // Serving knobs (eval / annotate): 1 thread and no deadline = the
  // sequential in-process path; anything else routes through the
  // AnnotationService.
  int threads = 1;        // --threads N: service worker threads
  int64_t deadline_ms = 0;  // --deadline-ms N: per-request deadline
  int max_queue = 64;     // --max-queue N: admission-control bound
  int encode_batch = 1;   // --encode-batch N: padded encoder batch drain
  int cell_cache = 4096;  // --cell-cache N: cell-link cache entries (0=off)
  // Overload control (served eval / load eval).
  std::string admission = "static";  // --admission=codel|static
  bool brownout = false;             // --brownout: degradation ladder on
  double retry_budget = 0.0;  // --retry-budget N: retry tokens/s (0=off)
  // Load-eval (eval with --load-rate > 0): open-loop arrivals against the
  // service instead of one submission per test table.
  double load_rate = 0.0;          // --load-rate R: offered arrivals/s
  double load_duration_s = 5.0;    // --load-duration-s S
  double load_zipf = 1.1;          // --load-zipf S: popularity skew
  int64_t load_burst_on_ms = 0;    // --load-burst-on-ms N
  int64_t load_burst_off_ms = 0;   // --load-burst-off-ms N
  uint64_t load_seed = 1;          // --load-seed N
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  kglink_cli gen-data <dir> [--style semtab|viznet] [--tables N] "
      "[--seed S]\n"
      "  kglink_cli train    <dir> --model <prefix> [--epochs N]\n"
      "  kglink_cli eval     <dir> --model <prefix>\n"
      "  kglink_cli annotate <dir> --model <prefix> <file.csv>\n"
      "  kglink_cli report   <explain-dir | provenance.jsonl>\n"
      "\n"
      "serving (eval / annotate):\n"
      "  --threads N      annotate test tables concurrently on an N-worker\n"
      "                   AnnotationService (default 1 = sequential)\n"
      "  --deadline-ms N  per-request deadline; an expired request degrades\n"
      "                   to the PLM-only path instead of blocking\n"
      "  --max-queue N    admission-control queue bound (default 64);\n"
      "                   overflow requests are shed to the degraded path\n"
      "  --encode-batch N workers drain up to N queued requests into one\n"
      "                   padded, attention-masked encoder forward\n"
      "                   (default 1 = sequential); a member whose deadline\n"
      "                   cannot survive the batch degrades instead\n"
      "  --slo-ms N       served-latency SLO target; HealthJson/--statsz\n"
      "                   report sliding-window compliance and burn rate\n"
      "                   against it (default 100)\n"
      "\n"
      "overload control (served eval / load eval):\n"
      "  --admission=MODE static (queue-full bound only, default) or codel\n"
      "                   (CoDel: shed on sustained queue sojourn above\n"
      "                   target — the hard bound still applies)\n"
      "  --brownout       enable the degradation ladder full -> cache-only\n"
      "                   linking -> PLM-only -> refuse, stepped by the SLO\n"
      "                   burn rate with hysteresis; results carry the tier\n"
      "                   in degrade_reason (\"brownout:...\")\n"
      "  --retry-budget N process-wide retry token budget (tokens/s, burst\n"
      "                   2N; 0 = off). An exhausted budget degrades the\n"
      "                   operation instead of retrying\n"
      "\n"
      "load eval (eval --load-rate R, requires --threads/--model):\n"
      "  --load-rate R         open-loop offered arrivals/s over the test\n"
      "                        tables (0 = normal served eval)\n"
      "  --load-duration-s S   offered window (default 5)\n"
      "  --load-zipf S         zipfian table-popularity exponent (default\n"
      "                        1.1; 0 = uniform)\n"
      "  --load-burst-on-ms N  on/off bursty arrivals: on-window (0 =\n"
      "                        steady)\n"
      "  --load-burst-off-ms N off-window\n"
      "  --load-seed N         arrival-schedule seed (default 1)\n"
      "\n"
      "retrieval (train / eval / annotate):\n"
      "  --cell-cache N   cell-link cache capacity in entries (default\n"
      "                   4096; 0 disables). Memoizes cell-text -> BM25\n"
      "                   top-k results across rows and tables; hit/miss/\n"
      "                   eviction counts appear under search.cache.* in\n"
      "                   --metrics output\n"
      "\n"
      "observability (any command):\n"
      "  --trace=FILE    write a Chrome trace-event JSON (load in\n"
      "                  chrome://tracing or https://ui.perfetto.dev)\n"
      "  --metrics=FILE  write a metrics snapshot (counters, gauges,\n"
      "                  latency histograms) as JSON\n"
      "  --explain=DIR   record per-column decision provenance (BM25 hits,\n"
      "                  filter decisions, candidate types, final logits)\n"
      "                  to DIR/provenance.jsonl; eval/annotate runs also\n"
      "                  write DIR/report.{txt,json} — the accuracy split\n"
      "                  by linked/unlinked/degraded columns\n"
      "  --statsz=FILE   rewrite FILE every --statsz-interval-ms (default\n"
      "                  1000) with a /statsz-style JSON status page:\n"
      "                  metrics snapshot plus, in served runs, the\n"
      "                  service's sliding-window latency/SLO health\n"
      "  --slow-ms N     flight-record any served request slower than N ms\n"
      "                  (stage breakdown as one JSON line, in-memory ring)\n"
      "  --slow-every N  also flight-record every Nth served request\n"
      "  --slow-log=FILE dump the flight-recorder ring as JSONL at exit\n"
      "  --profile=PREFIX  run the in-process sampling profiler for the\n"
      "                  whole command; writes PREFIX.collapsed (flamegraph\n"
      "                  .pl input) and PREFIX.speedscope.json at exit.\n"
      "                  Served eval also prints a hot-frame summary\n"
      "  --profile-hz N  sampling frequency (default 997)\n"
      "  --heap-profile  attribute allocations to profile frames; writes\n"
      "                  PREFIX.heap.collapsed (needs a build configured\n"
      "                  with -DKGLINK_ENABLE_HEAP_PROFILER=ON)\n"
      "\n"
      "snapshots (crash-safe mmap store for the KG + BM25 index):\n"
      "  --save-snapshot=FILE     write the world's KG + finalized index as\n"
      "                           one mmap-able snapshot (atomic\n"
      "                           temp+fsync+rename publish)\n"
      "  --snapshot=FILE          serve train/eval/annotate straight out of\n"
      "                           the mapped snapshot (zero-copy); a\n"
      "                           corrupt file is quarantined to\n"
      "                           FILE.corrupt and the world is rebuilt\n"
      "                           from <dir>/world.seed instead\n"
      "  --snapshot-validate=MODE eager (default: full CRC sweep at open)\n"
      "                           or lazy (header now, sections on first\n"
      "                           use)\n"
      "  --reload-snapshot=FILE   served eval only: hot-reload FILE between\n"
      "                           requests mid-run (RCU generation swap; a\n"
      "                           bad file rolls back to the serving\n"
      "                           generation)\n"
      "  --snapshot-generation=N  generation stamp for --save-snapshot\n"
      "                           (default 1; surfaced in HealthJson)\n"
      "\n"
      "fault injection (any command; for chaos testing):\n"
      "  --faults=SPEC   comma-separated site:prob[:latency_us] rules,\n"
      "                  e.g. --faults=search.topk:0.1,io.read:0.05:250\n"
      "                  sites: search.topk kg.neighbors io.read io.write\n"
      "                  train.batch predict (also via env KGLINK_FAULTS)\n"
      "  --fault-seed=N  seed for the deterministic fault streams\n"
      "                  (default 42; env KGLINK_FAULT_SEED)\n");
  return 2;
}

// Live while --statsz is active; ServedEval registers the service health
// section on it for the duration of the serving run.
std::unique_ptr<obs::StatszDumper> g_statsz;

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 3) return false;
  args->command = argv[1];
  args->dir = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--style") {
      const char* v = next();
      if (!v) return false;
      args->style = v;
    } else if (a == "--tables") {
      const char* v = next();
      if (!v) return false;
      args->tables = std::atoi(v);
    } else if (a == "--epochs") {
      const char* v = next();
      if (!v) return false;
      args->epochs = std::atoi(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (a == "--model") {
      const char* v = next();
      if (!v) return false;
      args->model_prefix = v;
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return false;
      args->threads = std::atoi(v);
      if (args->threads < 1) return false;
    } else if (a == "--deadline-ms") {
      const char* v = next();
      if (!v) return false;
      args->deadline_ms = std::atoll(v);
      if (args->deadline_ms < 0) return false;
    } else if (a == "--max-queue") {
      const char* v = next();
      if (!v) return false;
      args->max_queue = std::atoi(v);
      if (args->max_queue < 1) return false;
    } else if (a == "--encode-batch") {
      const char* v = next();
      if (!v) return false;
      args->encode_batch = std::atoi(v);
      if (args->encode_batch < 1) return false;
    } else if (a == "--cell-cache") {
      const char* v = next();
      if (!v) return false;
      args->cell_cache = std::atoi(v);
      if (args->cell_cache < 0) return false;
    } else if (a.rfind("--admission=", 0) == 0 || a == "--admission") {
      const char* v;
      std::string held;
      if (a == "--admission") {
        v = next();
        if (!v) return false;
      } else {
        held = a.substr(std::strlen("--admission="));
        v = held.c_str();
      }
      args->admission = v;
      if (!serve::AdmissionModeFromName(args->admission).has_value()) {
        std::fprintf(stderr,
                     "kglink_cli: --admission must be 'static' or 'codel', "
                     "got '%s'\n",
                     args->admission.c_str());
        return false;
      }
    } else if (a == "--brownout") {
      args->brownout = true;
    } else if (a == "--retry-budget") {
      const char* v = next();
      if (!v) return false;
      args->retry_budget = std::atof(v);
      if (args->retry_budget < 0) return false;
    } else if (a.rfind("--retry-budget=", 0) == 0) {
      args->retry_budget = std::atof(a.c_str() + std::strlen("--retry-budget="));
      if (args->retry_budget < 0) return false;
    } else if (a == "--load-rate") {
      const char* v = next();
      if (!v) return false;
      args->load_rate = std::atof(v);
      if (args->load_rate < 0) return false;
    } else if (a.rfind("--load-rate=", 0) == 0) {
      args->load_rate = std::atof(a.c_str() + std::strlen("--load-rate="));
      if (args->load_rate < 0) return false;
    } else if (a == "--load-duration-s") {
      const char* v = next();
      if (!v) return false;
      args->load_duration_s = std::atof(v);
      if (args->load_duration_s <= 0) return false;
    } else if (a.rfind("--load-duration-s=", 0) == 0) {
      args->load_duration_s =
          std::atof(a.c_str() + std::strlen("--load-duration-s="));
      if (args->load_duration_s <= 0) return false;
    } else if (a == "--load-zipf") {
      const char* v = next();
      if (!v) return false;
      args->load_zipf = std::atof(v);
      if (args->load_zipf < 0) return false;
    } else if (a.rfind("--load-zipf=", 0) == 0) {
      args->load_zipf = std::atof(a.c_str() + std::strlen("--load-zipf="));
      if (args->load_zipf < 0) return false;
    } else if (a == "--load-burst-on-ms") {
      const char* v = next();
      if (!v) return false;
      args->load_burst_on_ms = std::atoll(v);
      if (args->load_burst_on_ms < 0) return false;
    } else if (a.rfind("--load-burst-on-ms=", 0) == 0) {
      args->load_burst_on_ms =
          std::atoll(a.c_str() + std::strlen("--load-burst-on-ms="));
      if (args->load_burst_on_ms < 0) return false;
    } else if (a == "--load-burst-off-ms") {
      const char* v = next();
      if (!v) return false;
      args->load_burst_off_ms = std::atoll(v);
      if (args->load_burst_off_ms < 0) return false;
    } else if (a.rfind("--load-burst-off-ms=", 0) == 0) {
      args->load_burst_off_ms =
          std::atoll(a.c_str() + std::strlen("--load-burst-off-ms="));
      if (args->load_burst_off_ms < 0) return false;
    } else if (a == "--load-seed") {
      const char* v = next();
      if (!v) return false;
      args->load_seed = static_cast<uint64_t>(std::atoll(v));
    } else if (a.rfind("--load-seed=", 0) == 0) {
      args->load_seed = static_cast<uint64_t>(
          std::atoll(a.c_str() + std::strlen("--load-seed=")));
    } else if (a.rfind("--trace=", 0) == 0) {
      args->trace_path = a.substr(std::strlen("--trace="));
      if (args->trace_path.empty()) return false;
    } else if (a == "--trace") {
      const char* v = next();
      if (!v) return false;
      args->trace_path = v;
    } else if (a.rfind("--explain=", 0) == 0) {
      args->explain_dir = a.substr(std::strlen("--explain="));
      if (args->explain_dir.empty()) return false;
    } else if (a == "--explain") {
      const char* v = next();
      if (!v) return false;
      args->explain_dir = v;
    } else if (a.rfind("--metrics=", 0) == 0) {
      args->metrics_path = a.substr(std::strlen("--metrics="));
      if (args->metrics_path.empty()) return false;
    } else if (a == "--metrics") {
      const char* v = next();
      if (!v) return false;
      args->metrics_path = v;
    } else if (a.rfind("--statsz=", 0) == 0) {
      args->statsz_path = a.substr(std::strlen("--statsz="));
      if (args->statsz_path.empty()) return false;
    } else if (a == "--statsz") {
      const char* v = next();
      if (v == nullptr) return false;
      args->statsz_path = v;
    } else if (a == "--statsz-interval-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      args->statsz_interval_ms = std::atoll(v);
      if (args->statsz_interval_ms < 1) return false;
    } else if (a == "--slo-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      args->slo_ms = std::atoll(v);
      if (args->slo_ms < 1) return false;
    } else if (a == "--slow-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      args->slow_ms = std::atoll(v);
      if (args->slow_ms < 1) return false;
    } else if (a == "--slow-every") {
      const char* v = next();
      if (v == nullptr) return false;
      args->slow_every = std::atoll(v);
      if (args->slow_every < 1) return false;
    } else if (a.rfind("--slow-log=", 0) == 0) {
      args->slow_log_path = a.substr(std::strlen("--slow-log="));
      if (args->slow_log_path.empty()) return false;
    } else if (a == "--slow-log") {
      const char* v = next();
      if (v == nullptr) return false;
      args->slow_log_path = v;
    } else if (a.rfind("--profile=", 0) == 0) {
      args->profile_prefix = a.substr(std::strlen("--profile="));
      if (args->profile_prefix.empty()) return false;
    } else if (a == "--profile") {
      const char* v = next();
      if (v == nullptr) return false;
      args->profile_prefix = v;
    } else if (a == "--profile-hz") {
      const char* v = next();
      if (v == nullptr) return false;
      args->profile_hz = std::atoi(v);
      if (args->profile_hz < 1) return false;
    } else if (a == "--heap-profile") {
      args->heap_profile = true;
    } else if (a.rfind("--faults=", 0) == 0) {
      args->faults = a.substr(std::strlen("--faults="));
      if (args->faults.empty()) return false;
    } else if (a.rfind("--fault-seed=", 0) == 0) {
      args->fault_seed = static_cast<uint64_t>(
          std::atoll(a.c_str() + std::strlen("--fault-seed=")));
    } else if (a.rfind("--snapshot=", 0) == 0) {
      args->snapshot_path = a.substr(std::strlen("--snapshot="));
      if (args->snapshot_path.empty()) return false;
    } else if (a.rfind("--save-snapshot=", 0) == 0) {
      args->save_snapshot_path = a.substr(std::strlen("--save-snapshot="));
      if (args->save_snapshot_path.empty()) return false;
    } else if (a.rfind("--reload-snapshot=", 0) == 0) {
      args->reload_snapshot_path =
          a.substr(std::strlen("--reload-snapshot="));
      if (args->reload_snapshot_path.empty()) return false;
    } else if (a.rfind("--snapshot-validate=", 0) == 0) {
      args->snapshot_validate =
          a.substr(std::strlen("--snapshot-validate="));
      if (args->snapshot_validate != "eager" &&
          args->snapshot_validate != "lazy") {
        std::fprintf(stderr,
                     "kglink_cli: --snapshot-validate must be 'eager' or "
                     "'lazy', got '%s'\n",
                     args->snapshot_validate.c_str());
        return false;
      }
    } else if (a.rfind("--snapshot-generation=", 0) == 0) {
      args->snapshot_generation = static_cast<uint64_t>(
          std::atoll(a.c_str() + std::strlen("--snapshot-generation=")));
    } else if (a.rfind("--", 0) != 0) {
      args->csv_path = a;
    } else {
      // A typo'd flag (--snapsot=...) must fail loudly, not silently fall
      // back to default behavior.
      std::fprintf(stderr, "kglink_cli: unrecognized flag '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

// Rebuilds the deterministic world recorded under dir.
StatusOr<data::World> LoadWorld(const std::string& dir) {
  KGLINK_ASSIGN_OR_RETURN(std::string seed_text,
                          ReadFile(dir + "/world.seed"));
  data::WorldConfig wc;
  wc.seed = static_cast<uint64_t>(std::atoll(seed_text.c_str()));
  wc.open_class_scale = 4.0;
  return data::GenerateWorld(wc);
}

// The KG + engine a command runs against: either borrowed zero-copy from a
// mapped snapshot generation, or rebuilt in memory from <dir>/world.seed.
// Exactly one of {snap} / {world, built_engine} is populated; kg/engine
// always point at the live pair.
struct WorldSource {
  // Non-null when --snapshot / --reload-snapshot were given; served eval
  // attaches it to the AnnotationService so hot reload works.
  std::unique_ptr<store::SnapshotStore> store;
  std::shared_ptr<const store::LoadedSnapshot> snap;
  std::optional<data::World> world;
  std::optional<search::SearchEngine> built_engine;
  const kg::KnowledgeGraph* kg = nullptr;
  const search::SearchEngine* engine = nullptr;
};

// Prefers the snapshot when one was requested; any load failure (after the
// store's quarantine policy ran) falls back to the deterministic rebuild
// instead of aborting the command.
bool OpenWorld(const Args& args, WorldSource* src) {
  if (!args.snapshot_path.empty() || !args.reload_snapshot_path.empty()) {
    store::LoadOptions lopts;
    lopts.validate = args.snapshot_validate == "lazy"
                         ? store::ValidateMode::kLazy
                         : store::ValidateMode::kEager;
    src->store = std::make_unique<store::SnapshotStore>(lopts);
  }
  if (!args.snapshot_path.empty()) {
    auto loaded = src->store->Load(args.snapshot_path);
    if (loaded.ok()) {
      src->snap = std::move(loaded).value();
      src->kg = &src->snap->kg;
      src->engine = &src->snap->engine;
      std::printf("snapshot: serving generation %llu from %s (%s)\n",
                  static_cast<unsigned long long>(src->snap->generation),
                  args.snapshot_path.c_str(),
                  args.snapshot_validate.c_str());
      return true;
    }
    std::fprintf(stderr,
                 "kglink_cli: snapshot load failed (%s); falling back to "
                 "in-memory rebuild\n",
                 loaded.status().ToString().c_str());
  }
  auto world = LoadWorld(args.dir);
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return false;
  }
  src->world = std::move(world).value();
  src->built_engine = search::IndexKnowledgeGraph(src->world->kg);
  src->kg = &src->world->kg;
  src->engine = &*src->built_engine;
  return true;
}

// --save-snapshot: atomic temp+fsync+rename publish of the (kg, engine)
// pair. Returns the command exit code contribution (0 = ok).
int MaybeSaveSnapshot(const Args& args, const kg::KnowledgeGraph& kg,
                      const search::SearchEngine& engine) {
  if (args.save_snapshot_path.empty()) return 0;
  store::WriterOptions wopts;
  wopts.generation = args.snapshot_generation;
  Status s =
      store::WriteSnapshot(args.save_snapshot_path, kg, engine, wopts);
  if (!s.ok()) {
    std::fprintf(stderr, "kglink_cli: save-snapshot failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("snapshot: wrote generation %llu to %s\n",
              static_cast<unsigned long long>(args.snapshot_generation),
              args.save_snapshot_path.c_str());
  return 0;
}

int GenData(const Args& args) {
  data::WorldConfig wc;
  wc.seed = args.seed;
  wc.open_class_scale = 4.0;
  data::World world = data::GenerateWorld(wc);
  std::printf("world: %lld entities / %lld triples\n",
              static_cast<long long>(world.kg.num_entities()),
              static_cast<long long>(world.kg.num_triples()));

  table::Corpus corpus =
      args.style == "viznet"
          ? data::GenerateVizNetCorpus(
                world, data::CorpusOptions::VizNetDefaults(args.tables,
                                                           args.seed + 1))
          : data::GenerateSemTabCorpus(
                world, data::CorpusOptions::SemTabDefaults(args.tables,
                                                           args.seed + 1));
  Rng rng(args.seed + 2);
  table::SplitCorpus split = table::StratifiedSplit(corpus, 0.7, 0.1, rng);

  const std::pair<const char*, const table::Corpus*> parts[] = {
      {"train", &split.train}, {"valid", &split.valid},
      {"test", &split.test}};
  for (const auto& [name, part] : parts) {
    Status s = table::SaveCorpus(*part, args.dir + "/" + name);
    if (!s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!world.kg.SaveToFile(args.dir + "/kg.tsv").ok() ||
      !WriteFile(args.dir + "/world.seed", std::to_string(args.seed))
           .ok()) {
    std::fprintf(stderr, "cannot persist world\n");
    return 1;
  }
  std::printf("wrote %zu/%zu/%zu train/valid/test tables to %s\n",
              split.train.tables.size(), split.valid.tables.size(),
              split.test.tables.size(), args.dir.c_str());
  if (!args.save_snapshot_path.empty()) {
    search::SearchEngine engine = search::IndexKnowledgeGraph(world.kg);
    return MaybeSaveSnapshot(args, world.kg, engine);
  }
  return 0;
}

int Train(const Args& args) {
  WorldSource src;
  if (!OpenWorld(args, &src)) return 1;
  if (int rc = MaybeSaveSnapshot(args, *src.kg, *src.engine)) return rc;
  auto train = table::LoadCorpus(args.dir + "/train");
  auto valid = table::LoadCorpus(args.dir + "/valid");
  if (!train.ok() || !valid.ok()) {
    std::fprintf(stderr, "cannot load corpus splits from %s\n",
                 args.dir.c_str());
    return 1;
  }
  core::KgLinkOptions options;
  options.epochs = args.epochs;
  options.verbose = true;
  options.linker.cell_cache_capacity = args.cell_cache;
  core::KgLinkAnnotator annotator(src.kg, src.engine, options);
  annotator.Fit(*train, *valid);
  Status s = annotator.Save(args.model_prefix);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("model saved to %s.{vocab,labels,weights}\n",
              args.model_prefix.c_str());
  return 0;
}

// Evaluates the test split through an AnnotationService: tables are
// submitted as concurrent requests with the CLI's deadline, and columns
// from degraded/shed responses still count toward accuracy (they carry the
// PLM-only predictions). Prints the per-status breakdown next to accuracy.
// ServiceOptions shared by the served-eval and load-eval paths, including
// the overload-control posture. ValidatedServiceOptions (applied by the
// service constructor) clamps anything nonsensical with a logged warning.
serve::ServiceOptions ServiceOptionsFromArgs(const Args& args) {
  serve::ServiceOptions sopts;
  sopts.num_threads = args.threads;
  sopts.max_queue = args.max_queue;
  sopts.encode_batch = args.encode_batch;
  sopts.default_deadline_us = args.deadline_ms * 1000;
  if (args.slo_ms > 0) sopts.slo_target_us = args.slo_ms * 1000;
  sopts.admission =
      serve::AdmissionModeFromName(args.admission).value_or(
          serve::AdmissionMode::kStatic);
  sopts.brownout.enabled = args.brownout;
  sopts.retry_budget_per_second = args.retry_budget;
  return sopts;
}

int ServedEval(const Args& args, WorldSource& src,
               core::KgLinkAnnotator& annotator, const table::Corpus& test) {
  serve::AnnotationService service(&annotator, ServiceOptionsFromArgs(args));
  if (src.store != nullptr) service.AttachSnapshotStore(src.store.get());
  if (g_statsz != nullptr) {
    g_statsz->AddSection("serve",
                         [&service] { return service.HealthJson(); });
  }

  std::vector<std::future<serve::AnnotationResult>> futures;
  futures.reserve(test.tables.size());
  const size_t reload_at = test.tables.size() / 2;
  for (size_t i = 0; i < test.tables.size(); ++i) {
    if (i == reload_at && !args.reload_snapshot_path.empty()) {
      // Swap generations with requests in flight: the service quiesces
      // between items, so submissions before and after the swap both
      // complete — against the old and new generation respectively.
      Status s = service.ReloadSnapshot(args.reload_snapshot_path);
      if (s.ok()) {
        std::printf("snapshot: hot-reloaded %s mid-run (generation %llu)\n",
                    args.reload_snapshot_path.c_str(),
                    static_cast<unsigned long long>(
                        service.serving_snapshot()->generation));
      } else {
        std::fprintf(stderr,
                     "kglink_cli: hot reload failed (%s); previous "
                     "generation keeps serving\n",
                     s.ToString().c_str());
      }
    }
    futures.push_back(service.Submit(test.tables[i].table));
  }

  int64_t correct = 0;
  int64_t total = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::AnnotationResult result = futures[i].get();
    const auto& labels = test.tables[i].column_labels;
    if (result.predictions.empty()) continue;  // overloaded / failed
    for (size_t c = 0; c < labels.size(); ++c) {
      if (labels[c] == table::kUnlabeled) continue;
      ++total;
      if (c < result.predictions.size() &&
          result.predictions[c] == labels[c]) {
        ++correct;
      }
    }
  }
  if (g_statsz != nullptr) {
    // Freeze the last live health snapshot before the service object dies:
    // later dumps (including Stop()'s final write) keep reporting it
    // instead of losing the "serve" section.
    std::string final_health = service.HealthJson();
    g_statsz->AddSection(
        "serve", [final_health] { return final_health; });
  }
  service.Shutdown();

  double accuracy =
      total == 0 ? 0.0
                 : static_cast<double>(correct) / static_cast<double>(total);
  std::printf("test accuracy=%.2f%% over %lld columns "
              "(threads=%d deadline_ms=%lld max_queue=%d)\n",
              100 * accuracy, static_cast<long long>(total), args.threads,
              static_cast<long long>(args.deadline_ms), args.max_queue);
  for (int s = 0; s < serve::kNumRequestStatuses; ++s) {
    auto status = static_cast<serve::RequestStatus>(s);
    int64_t n = service.completed(status);
    if (n > 0) {
      std::printf("  %-10s %lld\n", serve::RequestStatusName(status),
                  static_cast<long long>(n));
    }
  }
  if (args.brownout) {
    for (int t = 0; t < serve::kNumBrownoutTiers; ++t) {
      auto tier = static_cast<serve::BrownoutTier>(t);
      int64_t n = service.tier_completed(tier);
      if (n > 0) {
        std::printf("  tier %-10s %lld\n", serve::BrownoutTierName(tier),
                    static_cast<long long>(n));
      }
    }
  }
  if (obs::Profiler::Global().running()) {
    // Hot-frame summary for the serving run (export happens at exit).
    std::fputs(obs::Profiler::Global().SummaryText().c_str(), stdout);
  }
  return 0;
}

// eval --load-rate R: open-loop offered load over the test tables instead
// of one submission each — the CLI entry point to the load harness (the
// full gated version lives in bench/bench_load.cc). Prints the LoadReport
// JSON; accuracy is not computed (arrivals repeat zipf-picked tables).
int LoadEval(const Args& args, WorldSource& src,
             core::KgLinkAnnotator& annotator, const table::Corpus& test) {
  serve::AnnotationService service(&annotator, ServiceOptionsFromArgs(args));
  if (src.store != nullptr) service.AttachSnapshotStore(src.store.get());
  if (g_statsz != nullptr) {
    g_statsz->AddSection("serve",
                         [&service] { return service.HealthJson(); });
  }
  std::vector<const table::Table*> tables;
  tables.reserve(test.tables.size());
  for (const auto& lt : test.tables) tables.push_back(&lt.table);

  serve::LoadgenOptions lg;
  lg.rate_per_second = args.load_rate;
  lg.duration_us = static_cast<int64_t>(args.load_duration_s * 1e6);
  lg.zipf_s = args.load_zipf;
  lg.burst_on_us = args.load_burst_on_ms * 1000;
  lg.burst_off_us = args.load_burst_off_ms * 1000;
  lg.deadline_us = args.deadline_ms * 1000;
  lg.seed = args.load_seed;
  serve::LoadReport report = serve::RunOpenLoop(service, tables, lg);
  std::printf("load report: %s\n", report.Json().c_str());

  if (g_statsz != nullptr) {
    std::string final_health = service.HealthJson();
    g_statsz->AddSection("serve", [final_health] { return final_health; });
  }
  service.Shutdown();
  return 0;
}

int Eval(const Args& args) {
  WorldSource src;
  if (!OpenWorld(args, &src)) return 1;
  if (int rc = MaybeSaveSnapshot(args, *src.kg, *src.engine)) return rc;
  auto test = table::LoadCorpus(args.dir + "/test");
  if (!test.ok()) {
    std::fprintf(stderr, "cannot load test split\n");
    return 1;
  }
  core::KgLinkOptions options;
  options.linker.cell_cache_capacity = args.cell_cache;
  core::KgLinkAnnotator annotator(src.kg, src.engine, options);
  Status s = annotator.Load(args.model_prefix);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (args.load_rate > 0) {
    return LoadEval(args, src, annotator, *test);
  }
  if (args.threads > 1 || args.deadline_ms > 0 || args.brownout ||
      args.retry_budget > 0 ||
      args.admission != "static") {
    return ServedEval(args, src, annotator, *test);
  }
  eval::Metrics m = annotator.Evaluate(*test);
  std::printf("test accuracy=%.2f%% weighted F1=%.2f%% over %lld columns\n",
              100 * m.accuracy, 100 * m.weighted_f1,
              static_cast<long long>(m.total));
  return 0;
}

int Annotate(const Args& args) {
  WorldSource src;
  if (!OpenWorld(args, &src)) return 1;
  if (int rc = MaybeSaveSnapshot(args, *src.kg, *src.engine)) return rc;
  core::KgLinkOptions options;
  options.linker.cell_cache_capacity = args.cell_cache;
  core::KgLinkAnnotator annotator(src.kg, src.engine, options);
  Status s = annotator.Load(args.model_prefix);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto rows = ReadCsvFile(args.csv_path);
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }
  auto t = table::Table::TryFromStrings(args.csv_path, *rows);
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return 1;
  }
  RequestContext rc;
  if (args.deadline_ms > 0) {
    rc.deadline = Deadline::AfterMicros(args.deadline_ms * 1000);
  }
  core::AnnotateOutcome outcome = annotator.AnnotateTable(*t, &rc);
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "annotate failed: %s\n",
                 outcome.status.ToString().c_str());
    return 1;
  }
  if (outcome.degraded) {
    std::printf("(degraded: %s — PLM-only predictions)\n",
                outcome.degrade_reason.c_str());
  }
  for (int c = 0; c < t->num_cols(); ++c) {
    std::printf("column %d: %s\n", c,
                annotator
                    .label_names()[static_cast<size_t>(
                        outcome.predictions[static_cast<size_t>(c)])]
                    .c_str());
  }
  return 0;
}

// Aggregates an existing provenance JSONL (or an --explain output dir)
// into the linked/unlinked/degraded error-analysis report.
int Report(const Args& args) {
  std::string path = args.dir;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    path += "/provenance.jsonl";
  }
  auto report = eval::LoadExplainReport(path);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::fputs(eval::FormatExplainReport(*report).c_str(), stdout);
  return 0;
}

// Writes the provenance JSONL plus the aggregated report.{txt,json} into
// the --explain directory.
int ExportProvenance(const std::string& dir, int command_rc) {
  obs::ProvenanceRecorder& recorder = obs::ProvenanceRecorder::Global();
  recorder.Stop();
  std::string jsonl = recorder.Jsonl();
  eval::ExplainReport report = eval::BuildExplainReport(jsonl);
  const std::pair<const char*, std::string> outputs[] = {
      {"/provenance.jsonl", std::move(jsonl)},
      {"/report.txt", eval::FormatExplainReport(report)},
      {"/report.json", eval::ExplainReportJson(report)},
  };
  for (const auto& [name, text] : outputs) {
    Status s = WriteFile(dir + name, text);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write explain output: %s\n",
                   s.ToString().c_str());
      if (command_rc == 0) command_rc = 1;
      return command_rc;
    }
  }
  std::printf("explain: %lld records (%lld columns) -> %s\n",
              static_cast<long long>(recorder.record_count()),
              static_cast<long long>(report.columns), dir.c_str());
  return command_rc;
}

// Writes the trace / metrics files requested on the command line. Called
// after the command body so the files capture the whole run.
int ExportObservability(const Args& args, int command_rc) {
  if (!args.trace_path.empty()) {
    obs::TraceRecorder::Global().Stop();
    Status s =
        obs::TraceRecorder::Global().WriteChromeJson(args.trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n", s.ToString().c_str());
      if (command_rc == 0) command_rc = 1;
    }
  }
  if (!args.metrics_path.empty()) {
    Status s =
        obs::MetricsRegistry::Global().WriteSnapshot(args.metrics_path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write metrics: %s\n",
                   s.ToString().c_str());
      if (command_rc == 0) command_rc = 1;
    }
  }
  if (!args.explain_dir.empty()) {
    command_rc = ExportProvenance(args.explain_dir, command_rc);
  }
  if (g_statsz != nullptr) {
    g_statsz->Stop();  // final write with end-of-run metrics
    std::printf("statsz: %lld dumps -> %s\n",
                static_cast<long long>(g_statsz->dumps()),
                g_statsz->path().c_str());
    g_statsz.reset();
  }
  if (!args.slow_log_path.empty()) {
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    recorder.Disable();
    Status s = recorder.WriteJsonl(args.slow_log_path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write slow-request log: %s\n",
                   s.ToString().c_str());
      if (command_rc == 0) command_rc = 1;
    } else {
      std::printf("slow-log: %zu records (%lld captured, %lld dropped) "
                  "-> %s\n",
                  recorder.size(),
                  static_cast<long long>(recorder.recorded()),
                  static_cast<long long>(recorder.overwritten()),
                  args.slow_log_path.c_str());
    }
  }
  if (!args.profile_prefix.empty() && obs::kProfilerCompiledIn) {
    obs::Profiler& profiler = obs::Profiler::Global();
    profiler.Stop();
    const std::string collapsed = args.profile_prefix + ".collapsed";
    const std::string speedscope =
        args.profile_prefix + ".speedscope.json";
    Status s = profiler.WriteCollapsed(collapsed);
    if (s.ok()) s = profiler.WriteSpeedscope(speedscope);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write profile: %s\n",
                   s.ToString().c_str());
      if (command_rc == 0) command_rc = 1;
    } else {
      std::printf("profile: %lld samples @ %d Hz -> %s, %s\n",
                  static_cast<long long>(profiler.samples()),
                  args.profile_hz, collapsed.c_str(), speedscope.c_str());
    }
    if (obs::HeapProfiler::Global().enabled()) {
      const std::string heap = args.profile_prefix + ".heap.collapsed";
      Status hs = obs::HeapProfiler::Global().WriteCollapsed(heap);
      if (!hs.ok()) {
        std::fprintf(stderr, "cannot write heap profile: %s\n",
                     hs.ToString().c_str());
        if (command_rc == 0) command_rc = 1;
      } else {
        std::printf("heap profile: -> %s\n", heap.c_str());
      }
    }
  }
  return command_rc;
}

int RunCommand(const Args& args) {
  if (args.command == "gen-data") return GenData(args);
  if (args.command == "report") return Report(args);
  if ((args.command == "train" || args.command == "eval" ||
       args.command == "annotate") &&
      args.model_prefix.empty()) {
    return Usage();
  }
  if (args.command == "train") return Train(args);
  if (args.command == "eval") return Eval(args);
  if (args.command == "annotate" && !args.csv_path.empty()) {
    return Annotate(args);
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (!args.faults.empty()) {
    Status s = robust::FaultInjector::Global().ConfigureFromSpec(
        args.faults, args.fault_seed);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return Usage();
    }
  }
  if (!args.trace_path.empty()) obs::TraceRecorder::Global().Start();
  if (!args.statsz_path.empty()) {
    g_statsz = std::make_unique<obs::StatszDumper>(args.statsz_path,
                                                   args.statsz_interval_ms);
    g_statsz->Start();
  }
  if (args.slow_ms > 0 || args.slow_every > 0) {
    obs::FlightRecorderOptions fr;
    fr.threshold_us = args.slow_ms * 1000;
    fr.sample_every_n = static_cast<uint32_t>(args.slow_every);
    obs::FlightRecorder::Global().Configure(fr);
  }
  if (args.heap_profile) {
    if (obs::kHeapProfilerCompiledIn) {
      obs::HeapProfiler::Global().Enable({});
    } else {
      std::fprintf(stderr,
                   "warning: built with KGLINK_ENABLE_HEAP_PROFILER=OFF; "
                   "--heap-profile will record nothing\n");
    }
  }
  if (!args.profile_prefix.empty()) {
    if (!obs::kProfilerCompiledIn) {
      std::fprintf(stderr,
                   "warning: built with KGLINK_ENABLE_PROFILER=OFF; "
                   "--profile will record nothing\n");
    } else {
      obs::ProfilerOptions popts;
      popts.hz = args.profile_hz;
      Status s = obs::Profiler::Global().Start(popts);
      if (!s.ok()) {
        std::fprintf(stderr, "cannot start profiler: %s\n",
                     s.ToString().c_str());
        return 1;
      }
    }
  }
  if (!args.explain_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(args.explain_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n",
                   args.explain_dir.c_str(), ec.message().c_str());
      return 1;
    }
    obs::ProvenanceRecorder::Global().Start();
    if (!obs::ProvenanceRecorder::Global().enabled()) {
      std::fprintf(stderr,
                   "warning: built with KGLINK_ENABLE_PROVENANCE=OFF; "
                   "--explain will record nothing\n");
    }
  }
  return ExportObservability(args, RunCommand(args));
}
