// jsonlint — validates the JSON artifacts the pipeline emits (metrics
// snapshots, trace files, provenance JSONL, bench telemetry) so CI can
// fail fast on malformed output:
//
//   jsonlint <file>...
//
// Files ending in .jsonl are validated line by line (blank lines are
// allowed); everything else must be one well-formed JSON document.
// Exits non-zero if any file fails, reporting the first bad line.
#include <cstdio>
#include <string>
#include <string_view>

#include "obs/json_util.h"
#include "util/csv.h"

using namespace kglink;

namespace {

bool HasSuffix(const std::string& s, const char* suffix) {
  std::string_view sv = suffix;
  return s.size() >= sv.size() &&
         std::string_view(s).substr(s.size() - sv.size()) == sv;
}

// Returns 0-based index of the first invalid line, or -1 if all valid.
long CheckJsonl(std::string_view text) {
  long line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos,
        eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (!line.empty() && !obs::IsValidJson(line)) return line_no;
    ++line_no;
  }
  return -1;
}

bool CheckFile(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 text.status().ToString().c_str());
    return false;
  }
  if (HasSuffix(path, ".jsonl")) {
    long bad = CheckJsonl(*text);
    if (bad >= 0) {
      std::fprintf(stderr, "%s:%ld: invalid JSON line\n", path.c_str(),
                   bad + 1);
      return false;
    }
    std::printf("%s: ok (jsonl)\n", path.c_str());
    return true;
  }
  if (!obs::IsValidJson(*text)) {
    std::fprintf(stderr, "%s: invalid JSON\n", path.c_str());
    return false;
  }
  std::printf("%s: ok\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: jsonlint <file>...\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    if (!CheckFile(argv[i])) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
