// Quickstart: generate a synthetic world + corpus, train KGLink, annotate
// a held-out table, and print the predictions with their KG evidence.
//
//   ./build/examples/quickstart [num_tables]
#include <cstdio>
#include <cstdlib>

#include "core/annotator.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "eval/metrics.h"
#include "search/search_engine.h"
#include "table/corpus.h"

using namespace kglink;

int main(int argc, char** argv) {
  int num_tables = argc > 1 ? std::atoi(argv[1]) : 120;

  // 1. The substrate: a WikiData-style synthetic KG and its BM25 index.
  data::WorldConfig world_config;
  world_config.scale = 0.6;
  data::World world = data::GenerateWorld(world_config);
  search::SearchEngine engine = search::IndexKnowledgeGraph(world.kg);
  std::printf("world: %lld entities, %lld triples\n",
              static_cast<long long>(world.kg.num_entities()),
              static_cast<long long>(world.kg.num_triples()));

  // 2. A SemTab-style corpus with a stratified 7:1:2 split.
  table::Corpus corpus = data::GenerateSemTabCorpus(
      world, data::CorpusOptions::SemTabDefaults(num_tables));
  Rng split_rng(99);
  table::SplitCorpus split = table::StratifiedSplit(corpus, 0.7, 0.1,
                                                    split_rng);
  std::printf("corpus: %zu train / %zu valid / %zu test tables, %d types\n",
              split.train.tables.size(), split.valid.tables.size(),
              split.test.tables.size(), corpus.num_labels());

  // 3. Train KGLink.
  core::KgLinkOptions options;
  options.epochs = 6;
  options.verbose = true;
  core::KgLinkAnnotator kglink_annotator(&world.kg, &engine, options);
  kglink_annotator.Fit(split.train, split.valid);

  // 4. Evaluate on the test split.
  eval::Metrics metrics = kglink_annotator.Evaluate(split.test);
  std::printf("test accuracy=%.2f%% weighted F1=%.2f%% (%lld columns)\n",
              100.0 * metrics.accuracy, 100.0 * metrics.weighted_f1,
              static_cast<long long>(metrics.total));

  // 5. Annotate one held-out table and show the KG evidence.
  if (!split.test.tables.empty()) {
    const table::LabeledTable& lt = split.test.tables[0];
    linker::ProcessedTable processed = kglink_annotator.Preprocess(lt.table);
    std::vector<int> pred = kglink_annotator.PredictProcessed(processed);
    std::printf("\nsample table %s:\n", lt.table.id().c_str());
    for (int c = 0; c < lt.table.num_cols(); ++c) {
      const auto& info = processed.columns[static_cast<size_t>(c)];
      std::string cts;
      for (const auto& label : info.candidate_type_labels) {
        if (!cts.empty()) cts += ", ";
        cts += label;
      }
      std::printf(
          "  col %d: first cell '%s' | predicted '%s' | gold '%s' | "
          "candidate types [%s]\n",
          c, lt.table.num_rows() ? lt.table.at(0, c).text.c_str() : "",
          corpus.label_names[static_cast<size_t>(pred[c])].c_str(),
          corpus.label_names[static_cast<size_t>(lt.column_labels[c])]
              .c_str(),
          cts.c_str());
    }
  }
  return 0;
}
