// Reproduces the paper's two motivating failure modes (Fig. 2) end-to-end:
//
//  (a) type granularity gap — for a column of basketball-player names the
//      KG proposes fine types ("basketball player", "basketball") while
//      the dataset label is the coarse "name"; KGLink's candidate types +
//      column-representation task bridge the gap.
//  (b) valuable context missing — a cricketer column whose only table
//      context is dates; the KG feature vector supplies the missing
//      context ("member of sports team ...", "plays cricket").
//
//   ./build/examples/granularity_gap
#include <cstdio>

#include "core/annotator.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "search/search_engine.h"
#include "table/corpus.h"

using namespace kglink;

namespace {

// Builds the Fig. 2(b)-style table: cricketer | birth date | death date.
table::Table ContextMissingTable(const data::World& world) {
  std::vector<std::vector<std::string>> cells;
  const auto& cricketers = world.Instances("cricketer");
  const char* dates[][2] = {{"1884-03-05", "1952-11-20"},
                            {"1901-07-12", "1977-01-03"},
                            {"1896-02-28", "1969-08-15"},
                            {"1910-10-01", "1988-04-22"},
                            {"1922-12-30", "1999-06-06"},
                            {"1933-05-17", "2001-09-09"}};
  for (int i = 0; i < 6; ++i) {
    cells.push_back({world.kg.entity(cricketers[static_cast<size_t>(i * 5)])
                         .label,
                     dates[i][0], dates[i][1]});
  }
  return table::Table::FromStrings("fig2b", cells);
}

}  // namespace

int main() {
  data::WorldConfig wc;
  wc.scale = 0.6;
  data::World world = data::GenerateWorld(wc);
  search::SearchEngine engine = search::IndexKnowledgeGraph(world.kg);

  // Train on the coarse-label (VizNet-style) corpus: its label space has
  // "name", not "cricketer" — the granularity gap is built in.
  table::Corpus corpus = data::GenerateVizNetCorpus(
      world, data::CorpusOptions::VizNetDefaults(160));
  Rng rng(8);
  table::SplitCorpus split = table::StratifiedSplit(corpus, 0.8, 0.1, rng);

  core::KgLinkOptions options;
  options.epochs = 5;
  core::KgLinkAnnotator annotator(&world.kg, &engine, options);
  std::printf("training KGLink on the coarse-label corpus (%zu tables)...\n",
              split.train.tables.size());
  annotator.Fit(split.train, split.valid);

  // ----- Fig. 2(b): valuable context missing -----
  table::Table t = ContextMissingTable(world);
  linker::ProcessedTable processed = annotator.Preprocess(t);
  std::vector<int> pred = annotator.PredictProcessed(processed);

  std::printf("\nFig. 2 scenario: cricketer names | birth date | death "
              "date\n");
  const auto& col0 = processed.columns[0];
  std::printf("target column first cell: '%s'\n", t.at(0, 0).text.c_str());
  std::printf("KG candidate types (fine granularity):");
  for (const auto& label : col0.candidate_type_labels) {
    std::printf(" '%s'", label.c_str());
  }
  std::printf("\ndataset label space is coarse: the model must map these "
              "to '%s'\n",
              annotator.label_names()[static_cast<size_t>(pred[0])].c_str());
  std::printf("predicted: '%s'  (gap bridged: %s)\n",
              annotator.label_names()[static_cast<size_t>(pred[0])].c_str(),
              annotator.label_names()[static_cast<size_t>(pred[0])] == "name"
                  ? "yes"
                  : "no");
  if (col0.has_feature) {
    std::printf("\nvaluable-context fix — feature sequence S(e) injected "
                "for the column:\n  %s\n",
                col0.feature_sequence.c_str());
  }
  std::printf("\nThe date columns provide no useful context (the paper's "
              "Fig. 2(b) point); the prediction relies on the KG "
              "evidence above plus the PLM prior.\n");
  for (int c = 1; c < t.num_cols(); ++c) {
    std::printf("context column %d predicted: '%s'\n", c,
                annotator.label_names()[static_cast<size_t>(
                                            pred[static_cast<size_t>(c)])]
                    .c_str());
  }
  return 0;
}
