// Annotate an arbitrary CSV file's columns with a KGLink model trained on
// the synthetic VizNet-style corpus, printing per-column predictions plus
// the KG evidence (candidate types, feature entity) behind them.
//
//   ./build/examples/annotate_csv [path/to/file.csv]
//
// Without an argument, a demo CSV is written to /tmp and annotated —
// including a numeric column and a typo, to show the robustness paths.
#include <cstdio>

#include "core/annotator.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "search/search_engine.h"
#include "table/corpus.h"
#include "util/csv.h"

using namespace kglink;

namespace {

// Builds a demo CSV using entity names that exist in the synthetic world,
// so the KG pipeline has something to link against.
std::string WriteDemoCsv(const data::World& world) {
  std::vector<std::vector<std::string>> rows;
  const auto& players = world.Instances("basketball player");
  const auto& kg = world.kg;
  for (int i = 0; i < 8; ++i) {
    kg::EntityId p = players[static_cast<size_t>(i * 3)];
    std::string team = "";
    std::string position = "";
    for (const auto& edge : kg.Edges(p)) {
      const std::string& pred = kg.predicate_label(edge.predicate);
      if (pred == "member of sports team" && edge.forward) {
        team = kg.entity(edge.target).label;
      }
      if (pred == "position played" && edge.forward) {
        position = kg.entity(edge.target).label;
      }
    }
    rows.push_back({kg.entity(p).label, team, position,
                    std::to_string(12 + i * 2) + "." + std::to_string(i)});
  }
  // A typo in one player cell, to exercise partial BM25 matching.
  if (rows[0][0].size() > 3) std::swap(rows[0][0][1], rows[0][0][2]);
  std::string path = "/tmp/kglink_demo_roster.csv";
  KGLINK_CHECK(WriteFile(path, WriteCsv(rows)).ok());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  // Substrate + training corpus (cached nothing: this demo retrains; in a
  // real deployment you would Save() after Fit and Load() here).
  data::WorldConfig wc;
  wc.scale = 0.6;
  data::World world = data::GenerateWorld(wc);
  search::SearchEngine engine = search::IndexKnowledgeGraph(world.kg);
  table::Corpus corpus = data::GenerateVizNetCorpus(
      world, data::CorpusOptions::VizNetDefaults(160));
  Rng split_rng(4);
  table::SplitCorpus split = table::StratifiedSplit(corpus, 0.8, 0.1,
                                                    split_rng);

  core::KgLinkOptions options;
  options.epochs = 5;
  options.verbose = true;
  core::KgLinkAnnotator annotator(&world.kg, &engine, options);
  std::printf("training KGLink on %zu web-style tables...\n",
              split.train.tables.size());
  annotator.Fit(split.train, split.valid);

  std::string path = argc > 1 ? argv[1] : WriteDemoCsv(world);
  auto rows = ReadCsvFile(path);
  if (!rows.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 rows.status().ToString().c_str());
    return 1;
  }
  table::Table t = table::Table::FromStrings(path, *rows);
  std::printf("\nannotating %s (%d rows x %d cols)\n", path.c_str(),
              t.num_rows(), t.num_cols());

  linker::ProcessedTable processed = annotator.Preprocess(t);
  std::vector<int> pred = annotator.PredictProcessed(processed);
  for (int c = 0; c < t.num_cols(); ++c) {
    const auto& info = processed.columns[static_cast<size_t>(c)];
    std::printf("column %d (first cell: '%s')\n", c,
                t.num_rows() > 0 ? t.at(0, c).text.c_str() : "");
    std::printf("  predicted type: %s\n",
                annotator.label_names()[static_cast<size_t>(
                                            pred[static_cast<size_t>(c)])]
                    .c_str());
    if (info.is_numeric) {
      std::printf("  numeric column: mean=%.2f var=%.2f median=%.2f\n",
                  info.stats.mean, info.stats.variance, info.stats.median);
    } else if (!info.candidate_type_labels.empty()) {
      std::printf("  KG candidate types:");
      for (size_t i = 0; i < info.candidate_type_labels.size(); ++i) {
        std::printf(" %s(score=%.1f)", info.candidate_type_labels[i].c_str(),
                    info.candidate_types[i].score);
      }
      std::printf("\n");
    } else {
      std::printf("  no candidate types survived the overlap filter%s\n",
                  info.has_feature ? " (feature vector still available)"
                                   : " and no KG linkage at all");
    }
  }
  return 0;
}
