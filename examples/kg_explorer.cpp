// Walks through the paper's Fig. 5 scenario on the synthetic KG: BM25
// entity search for cell mentions, one-hop neighbourhoods, the overlap
// filter that resolves label ambiguity, and candidate-type voting for a
// hand-typed column — Part 1 of KGLink, no neural network involved.
//
//   ./build/examples/kg_explorer [query]
#include <cstdio>

#include "data/world.h"
#include "linker/candidate_types.h"
#include "linker/entity_linker.h"
#include "search/search_engine.h"

using namespace kglink;

int main(int argc, char** argv) {
  data::WorldConfig wc;
  wc.scale = 0.5;
  wc.duplicate_entity_prob = 0.08;  // more ambiguity to showcase the filter
  data::World world = data::GenerateWorld(wc);
  search::SearchEngine engine = search::IndexKnowledgeGraph(world.kg);
  std::printf("WikiSynth: %lld entities, %lld triples, %lld predicates\n\n",
              static_cast<long long>(world.kg.num_entities()),
              static_cast<long long>(world.kg.num_triples()),
              static_cast<long long>(world.kg.num_predicates()));

  // ----- 1. BM25 entity search -----
  std::string query = argc > 1
                          ? argv[1]
                          : world.kg
                                .entity(world.Instances("musician")[0])
                                .label;
  std::printf("BM25 search for \"%s\":\n", query.c_str());
  for (const auto& hit : engine.TopK(query, 5)) {
    const kg::Entity& e = world.kg.entity(hit.doc_id);
    std::printf("  %-24s score=%.3f qid=%s%s\n", e.label.c_str(), hit.score,
                e.qid.c_str(), e.is_person ? " [PERSON]" : "");
  }

  // ----- 2. one-hop neighbourhood -----
  auto hits = engine.TopK(query, 1);
  if (!hits.empty()) {
    kg::EntityId top = hits[0].doc_id;
    std::printf("\none-hop neighbourhood of %s:\n",
                world.kg.entity(top).label.c_str());
    int shown = 0;
    for (const kg::Edge& edge : world.kg.Edges(top)) {
      if (shown++ >= 8) break;
      std::printf("  %s --%s--> %s\n",
                  edge.forward ? world.kg.entity(top).label.c_str()
                               : world.kg.entity(edge.target).label.c_str(),
                  world.kg.predicate_label(edge.predicate).c_str(),
                  edge.forward ? world.kg.entity(edge.target).label.c_str()
                               : world.kg.entity(top).label.c_str());
    }
  }

  // ----- 3. Fig. 5: a two-column table (album | artist) -----
  const auto& albums = world.Instances("album");
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < albums.size() && cells.size() < 6; ++i) {
    kg::EntityId album = albums[i];
    for (const kg::Edge& edge : world.kg.Edges(album)) {
      if (world.kg.predicate_label(edge.predicate) == "performer" &&
          edge.forward) {
        cells.push_back({world.kg.entity(album).label,
                         world.kg.entity(edge.target).label});
        break;
      }
    }
  }
  table::Table t = table::Table::FromStrings("fig5", cells);
  std::printf("\nFig. 5 walk-through on a %dx%d album|artist table:\n",
              t.num_rows(), t.num_cols());

  linker::LinkerConfig config;
  linker::EntityLinker linker(&world.kg, &engine, config);
  std::vector<linker::RowLinks> rows;
  for (int r = 0; r < t.num_rows(); ++r) {
    rows.push_back(linker.LinkRow(t, r));
    std::printf("  row %d ('%s' | '%s'): retrieved %zu+%zu, pruned %zu+%zu, "
                "row score %.2f\n",
                r, t.at(r, 0).text.c_str(), t.at(r, 1).text.c_str(),
                rows.back().cells[0].retrieved.size(),
                rows.back().cells[1].retrieved.size(),
                rows.back().cells[0].pruned.size(),
                rows.back().cells[1].pruned.size(), rows.back().row_score);
  }
  for (int c = 0; c < 2; ++c) {
    std::printf("  column %d candidate types:", c);
    for (const auto& ct :
         linker::GenerateCandidateTypes(world.kg, rows, c, config)) {
      std::printf(" %s(%.1f)", world.kg.entity(ct.entity).label.c_str(),
                  ct.score);
    }
    std::printf("\n");
  }
  std::printf(
      "\nNote how the PERSON filter keeps musicians out of the candidate "
      "types, and how the type entities ('album', 'musician') win the "
      "cross-row vote — exactly the paper's Fig. 5 argument.\n");
  return 0;
}
