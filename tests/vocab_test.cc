// Vocabulary/tokenizer tests: specials, frequency-based construction,
// number bucketing, persistence.
#include "nn/vocab.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace kglink::nn {
namespace {

TEST(VocabTest, SpecialsHaveFixedIds) {
  Vocabulary v = Vocabulary::Build({}, 1000);
  EXPECT_EQ(v.Id("[PAD]"), Vocabulary::kPad);
  EXPECT_EQ(v.Id("[UNK]"), Vocabulary::kUnk);
  EXPECT_EQ(v.Id("[CLS]"), Vocabulary::kCls);
  EXPECT_EQ(v.Id("[SEP]"), Vocabulary::kSep);
  EXPECT_EQ(v.Id("[MASK]"), Vocabulary::kMask);
}

TEST(VocabTest, FrequencyOrderAndCap) {
  std::vector<std::string> corpus = {"apple apple apple banana banana",
                                     "cherry"};
  Vocabulary v = Vocabulary::Build(corpus, 100000);
  int apple = v.Id("apple");
  int banana = v.Id("banana");
  int cherry = v.Id("cherry");
  EXPECT_NE(apple, Vocabulary::kUnk);
  EXPECT_LT(apple, banana);
  EXPECT_LT(banana, cherry);
}

TEST(VocabTest, UnknownWordsMapToUnk) {
  Vocabulary v = Vocabulary::Build({"hello world"}, 100000);
  auto ids = v.EncodeText("hello zorgblatt");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_NE(ids[0], Vocabulary::kUnk);
  EXPECT_EQ(ids[1], Vocabulary::kUnk);
}

TEST(VocabTest, NumberBuckets) {
  // Years get decade buckets.
  EXPECT_EQ(Vocabulary::NumberToken(1984), "<yr198>");
  EXPECT_EQ(Vocabulary::NumberToken(1989), "<yr198>");
  EXPECT_EQ(Vocabulary::NumberToken(2023), "<yr202>");
  // Other magnitudes get sign + order buckets.
  EXPECT_EQ(Vocabulary::NumberToken(5.0), "<num_p0>");
  EXPECT_EQ(Vocabulary::NumberToken(523456), "<num_p5>");
  EXPECT_EQ(Vocabulary::NumberToken(-42), "<num_m1>");
  EXPECT_EQ(Vocabulary::NumberToken(0.003), "<num_p-3>");
  EXPECT_EQ(Vocabulary::NumberToken(0.0), "<num_p-10>");
}

TEST(VocabTest, BucketsPreSeededEvenIfUnseen) {
  Vocabulary v = Vocabulary::Build({"just words"}, 100000);
  // Never appeared in the corpus, still has a dedicated id.
  EXPECT_NE(v.Id(Vocabulary::NumberToken(1877)), Vocabulary::kUnk);
  EXPECT_NE(v.Id(Vocabulary::NumberToken(-9.9e8)), Vocabulary::kUnk);
}

TEST(VocabTest, EncodeTextBucketsDigitRuns) {
  Vocabulary v = Vocabulary::Build({"score 1995"}, 100000);
  auto ids = v.EncodeText("in 1995 the score was 23");
  // "1995" and "23" become bucket tokens, not UNK.
  bool has_year = false;
  for (int id : ids) {
    if (v.TokenText(id) == "<yr199>") has_year = true;
  }
  EXPECT_TRUE(has_year);
}

TEST(VocabTest, EncodeTextTruncates) {
  Vocabulary v = Vocabulary::Build({"a b c d e"}, 100000);
  EXPECT_EQ(v.EncodeText("a b c d e", 3).size(), 3u);
  EXPECT_EQ(v.EncodeText("a b c d e", 0).size(), 5u);
}

TEST(VocabTest, SaveLoadRoundTrip) {
  Vocabulary v = Vocabulary::Build({"alpha beta beta"}, 100000);
  std::string path =
      (std::filesystem::temp_directory_path() / "kglink_vocab_test.txt")
          .string();
  ASSERT_TRUE(v.SaveToFile(path).ok());
  auto loaded = Vocabulary::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), v.size());
  EXPECT_EQ(loaded->Id("beta"), v.Id("beta"));
  EXPECT_EQ(loaded->Id("[MASK]"), Vocabulary::kMask);
  std::remove(path.c_str());
}

TEST(VocabTest, LoadRejectsGarbage) {
  std::string path =
      (std::filesystem::temp_directory_path() / "kglink_vocab_bad.txt")
          .string();
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not\na\nvalid\nvocab\n", f);
  std::fclose(f);
  EXPECT_FALSE(Vocabulary::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kglink::nn
