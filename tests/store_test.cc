// Snapshot store tests: write/load roundtrip with bit-identical parity
// against the in-memory build, deterministic writer output, version-skew
// handling (snapshot AND checkpoint), the quarantine policy, torn-write
// crash safety, injected mmap/load faults, and lazy-vs-eager validation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "data/world.h"
#include "kg/knowledge_graph.h"
#include "nn/checkpoint.h"
#include "obs/metrics.h"
#include "robust/fault_injector.h"
#include "search/search_engine.h"
#include "store/snapshot.h"
#include "store/snapshot_format.h"
#include "store/snapshot_store.h"
#include "store/snapshot_writer.h"
#include "util/crc32.h"
#include "util/csv.h"

namespace kglink::store {
namespace {

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).value();
}

bool FileExists(const std::string& path) {
  return ReadFile(path).ok();
}

class StoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::WorldConfig wc;
    wc.scale = 0.25;
    world_ = new data::World(data::GenerateWorld(wc));
    engine_ = new search::SearchEngine(
        search::IndexKnowledgeGraph(world_->kg));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete world_;
  }
  void TearDown() override { robust::FaultInjector::Global().Disable(); }

  // Unique path per test so quarantine renames don't leak across tests.
  // Stale quarantine files from an earlier run of the same binary would
  // shift the .corrupt/.corrupt.N suffixes, so clear them up front.
  std::string Path(const std::string& name) const {
    std::string path = ::testing::TempDir() + "store_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + name;
    ::unlink(path.c_str());
    ::unlink((path + ".corrupt").c_str());
    for (int i = 1; i < 10; ++i) {
      ::unlink((path + ".corrupt." + std::to_string(i)).c_str());
    }
    return path;
  }

  std::string WriteGood(const std::string& name, uint64_t generation = 1) {
    std::string path = Path(name);
    WriterOptions options;
    options.generation = generation;
    Status s = WriteSnapshot(path, world_->kg, *engine_, options);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return path;
  }

  static data::World* world_;
  static search::SearchEngine* engine_;
};
data::World* StoreTest::world_ = nullptr;
search::SearchEngine* StoreTest::engine_ = nullptr;

// ---------------------------------------------------------------------------
// Roundtrip + parity

TEST_F(StoreTest, RoundTripSearchParityBitIdentical) {
  std::string path = WriteGood("snap");
  auto snap = Snapshot::Open(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto loaded = (*snap)->MakeEngine();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const search::SearchEngine& mapped = *loaded;
  EXPECT_TRUE(mapped.borrowed());
  EXPECT_FALSE(engine_->borrowed());
  EXPECT_EQ(mapped.num_documents(), engine_->num_documents());

  // Query with real entity labels plus junk; scores must match to the bit.
  std::vector<std::string> queries;
  for (kg::EntityId id = 0; id < world_->kg.num_entities();
       id += world_->kg.num_entities() / 37 + 1) {
    queries.push_back(world_->kg.entity(id).label);
  }
  queries.push_back("completely unseen query text");
  for (const std::string& q : queries) {
    auto a = engine_->TopK(q, 10);
    auto b = mapped.TopK(q, 10);
    ASSERT_EQ(a.size(), b.size()) << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc_id, b[i].doc_id) << q;
      // Bit-level equality, not approximate.
      EXPECT_EQ(std::memcmp(&a[i].score, &b[i].score, sizeof(double)), 0)
          << q << " rank " << i;
    }
    if (!a.empty()) {
      EXPECT_EQ(engine_->Score(q, a[0].doc_id), mapped.Score(q, a[0].doc_id));
      auto ea = engine_->ExplainScore(q, a[0].doc_id);
      auto eb = mapped.ExplainScore(q, a[0].doc_id);
      ASSERT_EQ(ea.size(), eb.size());
      for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].term, eb[i].term);
        EXPECT_EQ(ea[i].contribution, eb[i].contribution);
      }
    }
  }
}

TEST_F(StoreTest, RoundTripKgParity) {
  std::string path = WriteGood("snap");
  auto snap = Snapshot::Open(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto loaded = (*snap)->MakeKg();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const kg::KnowledgeGraph& mapped = *loaded;
  const kg::KnowledgeGraph& orig = world_->kg;

  EXPECT_TRUE(mapped.frozen());
  ASSERT_EQ(mapped.num_entities(), orig.num_entities());
  EXPECT_EQ(mapped.num_triples(), orig.num_triples());
  ASSERT_EQ(mapped.num_predicates(), orig.num_predicates());
  for (kg::PredicateId p = 0; p < orig.num_predicates(); ++p) {
    EXPECT_EQ(mapped.predicate_label(p), orig.predicate_label(p));
  }
  for (kg::EntityId id = 0; id < orig.num_entities(); ++id) {
    const kg::Entity& a = orig.entity(id);
    const kg::Entity& b = mapped.entity(id);
    ASSERT_EQ(a.qid, b.qid);
    ASSERT_EQ(a.label, b.label);
    ASSERT_EQ(a.description, b.description);
    ASSERT_EQ(a.aliases, b.aliases);
    ASSERT_EQ(a.is_type, b.is_type);
    ASSERT_EQ(a.is_person, b.is_person);
    ASSERT_EQ(a.is_date, b.is_date);
    EXPECT_EQ(mapped.FindByQid(a.qid), id);
    // Label lookup goes through the borrowed sorted index on the frozen
    // side; results must match the owned hash map, order included.
    EXPECT_EQ(mapped.FindByLabel(a.label), orig.FindByLabel(a.label));

    auto ea = orig.Edges(id);
    auto eb = mapped.Edges(id);
    ASSERT_EQ(ea.size(), eb.size()) << "entity " << id;
    for (size_t i = 0; i < ea.size(); ++i) {
      ASSERT_EQ(ea[i].predicate, eb[i].predicate);
      ASSERT_EQ(ea[i].target, eb[i].target);
      ASSERT_EQ(ea[i].forward, eb[i].forward);
    }
    auto na = orig.NeighborSet(id);
    auto nb = mapped.NeighborSet(id);
    ASSERT_EQ(na.size(), nb.size()) << "entity " << id;
    for (size_t i = 0; i < na.size(); ++i) ASSERT_EQ(na[i], nb[i]);
  }
  // Derived queries ride on the same topology.
  for (kg::EntityId id = 0; id < orig.num_entities();
       id += orig.num_entities() / 53 + 1) {
    EXPECT_EQ(mapped.InstanceTypes(id), orig.InstanceTypes(id));
    EXPECT_EQ(mapped.SuperClasses(id), orig.SuperClasses(id));
  }
  // Misses agree too.
  EXPECT_EQ(mapped.FindByQid("Q-no-such-entity"), kg::kInvalidEntity);
  EXPECT_EQ(mapped.FindByQid(""), kg::kInvalidEntity);
  EXPECT_TRUE(mapped.FindByLabel("no such label anywhere").empty());
}

TEST_F(StoreTest, FrozenGraphRejectsMutation) {
  std::string path = WriteGood("snap");
  auto snap = Snapshot::Open(path);
  ASSERT_TRUE(snap.ok());
  auto loaded = (*snap)->MakeKg();
  ASSERT_TRUE(loaded.ok());
  EXPECT_DEATH(loaded->AddTriple(0, kg::KnowledgeGraph::kInstanceOf, 1),
               "frozen");
}

TEST_F(StoreTest, WriterIsDeterministic) {
  std::string a = WriteGood("a");
  std::string b = WriteGood("b");
  auto bytes_a = ReadFile(a);
  auto bytes_b = ReadFile(b);
  ASSERT_TRUE(bytes_a.ok() && bytes_b.ok());
  EXPECT_EQ(*bytes_a, *bytes_b);
}

TEST_F(StoreTest, UnfinalizedEngineRejected) {
  search::SearchEngine empty;
  Status s = WriteSnapshot(Path("snap"), world_->kg, empty, {});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Version skew

TEST_F(StoreTest, SnapshotVersionSkewNamesBothVersions) {
  std::string path = Path("snap");
  WriterOptions options;
  options.format_version = kSnapshotFormatVersion + 1;
  ASSERT_TRUE(WriteSnapshot(path, world_->kg, *engine_, options).ok());

  auto snap = Snapshot::Open(path);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kVersionSkew);
  std::string msg = snap.status().ToString();
  EXPECT_NE(msg.find(std::to_string(kSnapshotFormatVersion + 1)),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find(std::to_string(kSnapshotFormatVersion)),
            std::string::npos)
      << msg;
}

TEST_F(StoreTest, VersionSkewIsNotQuarantined) {
  std::string path = Path("snap");
  WriterOptions options;
  options.format_version = kSnapshotFormatVersion + 1;
  ASSERT_TRUE(WriteSnapshot(path, world_->kg, *engine_, options).ok());

  int64_t quarantined_before = CounterValue("store.snapshot.quarantined");
  int64_t skew_before = CounterValue("store.snapshot.version_skew");
  SnapshotStore store;
  auto loaded = store.Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kVersionSkew);
  // The file is fine (a newer binary wants it): it must stay in place.
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".corrupt"));
  EXPECT_EQ(CounterValue("store.snapshot.quarantined"), quarantined_before);
  EXPECT_EQ(CounterValue("store.snapshot.version_skew"), skew_before + 1);
}

TEST_F(StoreTest, CheckpointVersionSkewNamesBothVersions) {
  // Hand-build a v3 checkpoint payload (magic, version, count=0) with a
  // valid CRC: the only failing check must be the version gate.
  std::string payload;
  const uint32_t magic = 0x4b474c4bu;
  const uint32_t version = 3;
  const uint32_t count = 0;
  payload.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  payload.append(reinterpret_cast<const char*>(&version), sizeof(version));
  payload.append(reinterpret_cast<const char*>(&count), sizeof(count));
  uint32_t crc = Crc32(payload);
  payload.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  std::string path = Path("ckpt");
  ASSERT_TRUE(WriteFile(path, payload).ok());

  std::vector<nn::NamedParam> params;
  Status s = nn::LoadTensors(path, &params);
  EXPECT_EQ(s.code(), StatusCode::kVersionSkew);
  std::string msg = s.ToString();
  EXPECT_NE(msg.find("v3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("v2"), std::string::npos) << msg;
  // The skewed checkpoint must stay on disk too.
  EXPECT_TRUE(FileExists(path));
}

// ---------------------------------------------------------------------------
// Quarantine policy

TEST_F(StoreTest, CorruptionQuarantinesAndPreservesBytes) {
  std::string path = WriteGood("snap");
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = *bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteFile(path, corrupt).ok());

  int64_t quarantined_before = CounterValue("store.snapshot.quarantined");
  int64_t failures_before = CounterValue("store.snapshot.load_failures");
  SnapshotStore store;
  auto loaded = store.Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(store.current(), nullptr);
  // Renamed out of the load path, bytes preserved for forensics.
  EXPECT_FALSE(FileExists(path));
  auto preserved = ReadFile(path + ".corrupt");
  ASSERT_TRUE(preserved.ok());
  EXPECT_EQ(*preserved, corrupt);
  EXPECT_EQ(CounterValue("store.snapshot.quarantined"),
            quarantined_before + 1);
  EXPECT_EQ(CounterValue("store.snapshot.load_failures"),
            failures_before + 1);

  // A second corrupt file at the same path must not overwrite the first
  // quarantined one.
  ASSERT_TRUE(WriteFile(path, corrupt).ok());
  ASSERT_FALSE(store.Load(path).ok());
  EXPECT_TRUE(FileExists(path + ".corrupt"));
  EXPECT_TRUE(FileExists(path + ".corrupt.1"));
}

TEST_F(StoreTest, MissingFileIsIoErrorNotQuarantine) {
  int64_t quarantined_before = CounterValue("store.snapshot.quarantined");
  SnapshotStore store;
  auto loaded = store.Load(Path("nonexistent"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_EQ(CounterValue("store.snapshot.quarantined"), quarantined_before);
}

TEST_F(StoreTest, GoodLoadPublishesGeneration) {
  std::string path = WriteGood("snap", /*generation=*/7);
  SnapshotStore store;
  auto loaded = store.Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->generation, 7u);
  EXPECT_EQ((*loaded)->sequence, 1u);
  EXPECT_EQ(store.current(), *loaded);
  // A failed load never clobbers the published generation.
  ASSERT_FALSE(store.Load(Path("nonexistent")).ok());
  EXPECT_EQ(store.current(), *loaded);
}

// ---------------------------------------------------------------------------
// Crash safety: torn writes and injected faults

TEST_F(StoreTest, TornWriteLeavesOldSnapshotIntact) {
  std::string path = WriteGood("snap");
  auto before = ReadFile(path);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("io.write:1.0", 42)
                  .ok());
  Status s = WriteSnapshot(path, world_->kg, *engine_, {});
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  robust::FaultInjector::Global().Disable();

  // The torn temp file exists, the published file is byte-identical, and
  // it still loads.
  EXPECT_TRUE(FileExists(path + ".tmp"));
  auto after = ReadFile(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  SnapshotStore store;
  EXPECT_TRUE(store.Load(path).ok());
}

TEST_F(StoreTest, InjectedMmapAndLoadFaultsAreTransient) {
  std::string path = WriteGood("snap");
  int64_t quarantined_before = CounterValue("store.snapshot.quarantined");
  for (const char* spec : {"io.mmap:1.0", "store.load:1.0"}) {
    ASSERT_TRUE(
        robust::FaultInjector::Global().ConfigureFromSpec(spec, 42).ok());
    SnapshotStore store;
    auto loaded = store.Load(path);
    ASSERT_FALSE(loaded.ok()) << spec;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError) << spec;
    robust::FaultInjector::Global().Disable();
    // Transient: not quarantined, and the very next load succeeds.
    EXPECT_TRUE(FileExists(path)) << spec;
    EXPECT_TRUE(store.Load(path).ok()) << spec;
  }
  EXPECT_EQ(CounterValue("store.snapshot.quarantined"), quarantined_before);
}

// ---------------------------------------------------------------------------
// Lazy vs eager validation

TEST_F(StoreTest, LazyValidationDefersSectionChecksToFirstUse) {
  std::string path = WriteGood("snap");
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());

  // Parse the section table to aim the corruption at a KG payload byte.
  SnapshotHeader header;
  std::memcpy(&header, bytes->data(), sizeof(header));
  uint64_t target = 0;
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry,
                bytes->data() + sizeof(header) + i * sizeof(SectionEntry),
                sizeof(entry));
    if (entry.id == static_cast<uint32_t>(SectionId::kKgEdges)) {
      target = entry.offset + entry.size / 2;
    }
  }
  ASSERT_NE(target, 0u);
  std::string corrupt = *bytes;
  corrupt[target] ^= 0x01;
  ASSERT_TRUE(WriteFile(path, corrupt).ok());

  // Eager: rejected at Open.
  LoadOptions eager;
  eager.validate = ValidateMode::kEager;
  EXPECT_EQ(Snapshot::Open(path, eager).status().code(),
            StatusCode::kCorruption);

  // Lazy: Open passes (header area is intact), the search group still
  // validates clean, and the corruption surfaces on first KG use.
  LoadOptions lazy;
  lazy.validate = ValidateMode::kLazy;
  auto snap = Snapshot::Open(path, lazy);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE((*snap)->MakeEngine().ok());
  auto kg = (*snap)->MakeKg();
  ASSERT_FALSE(kg.ok());
  EXPECT_EQ(kg.status().code(), StatusCode::kCorruption);
  std::string msg = kg.status().ToString();
  EXPECT_NE(msg.find("kg.edges"), std::string::npos) << msg;

  // The store applies quarantine on the lazily-surfaced corruption too.
  SnapshotStore store(lazy);
  int64_t quarantined_before = CounterValue("store.snapshot.quarantined");
  ASSERT_FALSE(store.Load(path).ok());
  EXPECT_EQ(CounterValue("store.snapshot.quarantined"),
            quarantined_before + 1);
  EXPECT_FALSE(FileExists(path));
}

}  // namespace
}  // namespace kglink::store
