// Adversarial-input hardening tests: malformed CSV, hostile corpus
// directories, corrupted/torn checkpoints. Every case must come back as a
// non-OK Status — never an abort, never silently wrong data.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "nn/checkpoint.h"
#include "nn/tensor.h"
#include "robust/fault_injector.h"
#include "table/corpus_io.h"
#include "table/table.h"
#include "util/csv.h"

namespace kglink {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// CSV parsing

TEST(AdversarialCsvTest, UnterminatedQuoteIsCorruption) {
  auto r = ParseCsv("a,\"unterminated\nb,c\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(AdversarialCsvTest, EmbeddedNulIsCorruption) {
  std::string text = "a,b\nc,";
  text.push_back('\0');
  text += "d\n";
  auto r = ParseCsv(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(AdversarialCsvTest, EmptyDocumentParsesToNoRows) {
  auto r = ParseCsv("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(AdversarialCsvTest, QuoteTornAtEndOfInput) {
  auto r = ParseCsv("a,b\n\"");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(AdversarialTableTest, RaggedRowsRejectedNotAborted) {
  auto t = table::Table::TryFromStrings("rag", {{"a", "b"}, {"c"}});
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  // Well-formed input still goes through the validating entry point.
  auto ok = table::Table::TryFromStrings("fine", {{"a", "b"}, {"c", "d"}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_rows(), 2);
  EXPECT_EQ(ok->num_cols(), 2);
}

// ---------------------------------------------------------------------------
// Corpus directories

TEST(AdversarialCorpusTest, RaggedTableFileIsRejected) {
  std::string dir = TempDir("kglink_adv_ragged");
  ASSERT_TRUE(WriteFile(dir + "/corpus.meta", "c\nlabel0\n").ok());
  ASSERT_TRUE(WriteFile(dir + "/t0.csv", "a,b\nc\n").ok());
  ASSERT_TRUE(WriteFile(dir + "/tables.tsv", "t0.csv\t0\n").ok());
  auto r = table::LoadCorpus(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  fs::remove_all(dir);
}

TEST(AdversarialCorpusTest, EmptyTableFileIsCorruption) {
  std::string dir = TempDir("kglink_adv_empty");
  ASSERT_TRUE(WriteFile(dir + "/corpus.meta", "c\nlabel0\n").ok());
  ASSERT_TRUE(WriteFile(dir + "/t0.csv", "").ok());
  ASSERT_TRUE(WriteFile(dir + "/tables.tsv", "t0.csv\t0\n").ok());
  auto r = table::LoadCorpus(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  fs::remove_all(dir);
}

TEST(AdversarialCorpusTest, NulByteInTableFileIsCorruption) {
  std::string dir = TempDir("kglink_adv_nul");
  ASSERT_TRUE(WriteFile(dir + "/corpus.meta", "c\nlabel0\n").ok());
  std::string cells = "a,b\nc,";
  cells.push_back('\0');
  cells += "\n";
  ASSERT_TRUE(WriteFile(dir + "/t0.csv", cells).ok());
  ASSERT_TRUE(WriteFile(dir + "/tables.tsv", "t0.csv\t0\n").ok());
  auto r = table::LoadCorpus(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  fs::remove_all(dir);
}

TEST(AdversarialCorpusTest, TruncatedQuoteInTableFileIsCorruption) {
  std::string dir = TempDir("kglink_adv_quote");
  ASSERT_TRUE(WriteFile(dir + "/corpus.meta", "c\nlabel0\n").ok());
  ASSERT_TRUE(WriteFile(dir + "/t0.csv", "a,\"torn\n").ok());
  ASSERT_TRUE(WriteFile(dir + "/tables.tsv", "t0.csv\t0\n").ok());
  auto r = table::LoadCorpus(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Checkpoint durability

std::vector<nn::NamedParam> MakeParams() {
  std::vector<nn::NamedParam> params;
  params.push_back(
      {"w", nn::Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6})});
  params.push_back({"b", nn::Tensor::FromData({3}, {0.5f, -0.5f, 7.0f})});
  return params;
}

class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs each case as its own process, so a
    // shared fixture dir would let one case's SetUp remove_all() race a
    // sibling's in-flight save.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = TempDir(std::string("kglink_adv_ckpt_") + info->name());
    path_ = dir_ + "/model.ckpt";
  }
  void TearDown() override {
    robust::FaultInjector::Global().Disable();
    fs::remove_all(dir_);
  }

  std::string dir_;
  std::string path_;
};

TEST_F(CheckpointCorruptionTest, SaveLoadRoundTrip) {
  ASSERT_TRUE(nn::SaveTensors(path_, MakeParams()).ok());
  auto params = MakeParams();
  for (auto& p : params) {
    std::fill(p.tensor.data().begin(), p.tensor.data().end(), 0.0f);
  }
  ASSERT_TRUE(nn::LoadTensors(path_, &params).ok());
  auto expected = MakeParams();
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i].tensor.data(), expected[i].tensor.data());
  }
  // No stray temp file survives a successful save.
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
}

TEST_F(CheckpointCorruptionTest, AnySingleByteFlipIsCorruption) {
  ASSERT_TRUE(nn::SaveTensors(path_, MakeParams()).ok());
  auto blob = ReadFile(path_);
  ASSERT_TRUE(blob.ok());
  // Flip one byte at a spread of offsets: header, tensor name, float data,
  // and the CRC footer itself must all be caught.
  std::vector<size_t> offsets = {0, blob->size() / 4, blob->size() / 2,
                                 blob->size() - 5, blob->size() - 1};
  for (size_t off : offsets) {
    std::string bad = *blob;
    bad[off] = static_cast<char>(bad[off] ^ 0x40);
    ASSERT_TRUE(WriteFile(path_, bad).ok());
    auto params = MakeParams();
    Status s = nn::LoadTensors(path_, &params);
    ASSERT_FALSE(s.ok()) << "byte flip at offset " << off << " loaded OK";
    EXPECT_EQ(s.code(), StatusCode::kCorruption)
        << "offset " << off << ": " << s.ToString();
  }
}

TEST_F(CheckpointCorruptionTest, TruncationIsCorruption) {
  ASSERT_TRUE(nn::SaveTensors(path_, MakeParams()).ok());
  auto blob = ReadFile(path_);
  ASSERT_TRUE(blob.ok());
  for (size_t keep : {size_t{0}, size_t{3}, blob->size() / 2,
                      blob->size() - 1}) {
    ASSERT_TRUE(WriteFile(path_, blob->substr(0, keep)).ok());
    auto params = MakeParams();
    Status s = nn::LoadTensors(path_, &params);
    ASSERT_FALSE(s.ok()) << "truncated to " << keep << " bytes loaded OK";
    EXPECT_EQ(s.code(), StatusCode::kCorruption);
  }
}

TEST_F(CheckpointCorruptionTest, TornWriteNeverReplacesGoodCheckpoint) {
  // A good checkpoint exists...
  ASSERT_TRUE(nn::SaveTensors(path_, MakeParams()).ok());
  auto good = ReadFile(path_);
  ASSERT_TRUE(good.ok());

  // ...then an io.write fault tears the next save mid-payload.
  robust::FaultInjector::Global().Configure(
      {{robust::FaultSite::kIoWrite, {1.0, 0}}}, 13);
  auto params = MakeParams();
  std::fill(params[0].tensor.data().begin(), params[0].tensor.data().end(),
            9.0f);
  Status s = nn::SaveTensors(path_, params);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  robust::FaultInjector::Global().Disable();

  // The original file is byte-identical and still loads.
  auto after = ReadFile(path_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *good);
  auto reload = MakeParams();
  EXPECT_TRUE(nn::LoadTensors(path_, &reload).ok());

  // The torn temp file (if left behind) must never load as a checkpoint.
  if (fs::exists(path_ + ".tmp")) {
    auto torn = MakeParams();
    EXPECT_FALSE(nn::LoadTensors(path_ + ".tmp", &torn).ok());
  }
}

TEST_F(CheckpointCorruptionTest, ShapeMismatchRejected) {
  ASSERT_TRUE(nn::SaveTensors(path_, MakeParams()).ok());
  std::vector<nn::NamedParam> wrong;
  wrong.push_back({"w", nn::Tensor::Zeros({3, 3})});
  wrong.push_back({"b", nn::Tensor::Zeros({3})});
  EXPECT_FALSE(nn::LoadTensors(path_, &wrong).ok());
}

TEST_F(CheckpointCorruptionTest, MissingFileIsNotOk) {
  auto params = MakeParams();
  EXPECT_FALSE(nn::LoadTensors(dir_ + "/nope.ckpt", &params).ok());
}

// ---------------------------------------------------------------------------
// Atomic WriteFile

TEST(AtomicWriteFileTest, OverwriteIsAllOrNothing) {
  std::string dir = TempDir("kglink_adv_atomic");
  std::string path = dir + "/file.txt";
  ASSERT_TRUE(WriteFile(path, "original").ok());
  ASSERT_TRUE(WriteFile(path, "replacement").ok());
  auto r = ReadFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "replacement");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // Writing into a nonexistent directory fails without creating the target.
  EXPECT_FALSE(WriteFile(dir + "/no/such/dir/f", "x").ok());
  EXPECT_FALSE(fs::exists(dir + "/no/such/dir/f"));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace kglink
