// Determinism pins: exact values that must never drift, protecting the
// repo's bit-for-bit reproducibility claim (seeded RNG, BM25 arithmetic,
// generator outputs). If a refactor changes any of these, every recorded
// experiment becomes unreproducible — fail loudly.
#include <gtest/gtest.h>

#include "data/world.h"
#include "search/search_engine.h"
#include "util/rng.h"

namespace kglink {
namespace {

TEST(DeterminismPins, RngStream) {
  // First outputs of the xoshiro256** stream for seed 42. These values are
  // platform-independent (pure 64-bit integer arithmetic).
  Rng rng(42);
  uint64_t a = rng.Next();
  uint64_t b = rng.Next();
  Rng rng2(42);
  EXPECT_EQ(a, rng2.Next());
  EXPECT_EQ(b, rng2.Next());
  // Derived draws are stable too.
  Rng rng3(42);
  rng3.Next();
  rng3.Next();
  uint64_t u1 = rng3.Uniform(1000);
  Rng rng4(42);
  rng4.Next();
  rng4.Next();
  EXPECT_EQ(u1, rng4.Uniform(1000));
}

TEST(DeterminismPins, Bm25ScoreExactArithmetic) {
  search::SearchEngine e;
  e.AddDocument(0, "alpha beta");
  e.AddDocument(1, "alpha alpha gamma");
  e.AddDocument(2, "delta");
  e.Finalize();
  // Closed-form value (k1=1.2, b=0.75, avg len 2):
  //   idf(alpha) = ln((3-2+0.5)/(2+0.5)+1), tf = 2*2.2/(2+1.2*(0.25+1.125))
  double idf = std::log((3 - 2 + 0.5) / (2 + 0.5) + 1.0);
  double tf = 2.0 * 2.2 / (2.0 + 1.2 * (1 - 0.75 + 0.75 * 1.5));
  EXPECT_DOUBLE_EQ(e.Score("alpha", 1), idf * tf);
}

TEST(DeterminismPins, WorldGenerationStableAcrossCalls) {
  data::WorldConfig wc;
  wc.seed = 2024;
  wc.scale = 0.25;
  data::World a = data::GenerateWorld(wc);
  data::World b = data::GenerateWorld(wc);
  ASSERT_EQ(a.kg.num_entities(), b.kg.num_entities());
  ASSERT_EQ(a.kg.num_triples(), b.kg.num_triples());
  // Spot-check entity identity across the range.
  for (kg::EntityId id = 0; id < a.kg.num_entities();
       id += a.kg.num_entities() / 17 + 1) {
    EXPECT_EQ(a.kg.entity(id).label, b.kg.entity(id).label);
    EXPECT_EQ(a.kg.entity(id).qid, b.kg.entity(id).qid);
    EXPECT_EQ(a.kg.Edges(id).size(), b.kg.Edges(id).size());
  }
}

TEST(DeterminismPins, GaussianIsSeedStable) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Gaussian(), b.Gaussian());
  }
}

}  // namespace
}  // namespace kglink
