// End-to-end observability test: runs the same path as
//   kglink_cli train --trace=FILE --metrics=FILE
// (trace recorder armed around a full Fit + predict on a miniature corpus)
// and asserts the acceptance contract: the Chrome trace JSON is valid with
// balanced B/E events covering every Part-1 stage and every training
// epoch, and the metrics snapshot contains the required counter/gauge
// names with sane values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/annotator.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "linker/row_filter.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/search_engine.h"
#include "util/csv.h"

namespace kglink {
namespace {

core::KgLinkOptions TinyOptions() {
  core::KgLinkOptions o;
  o.epochs = 2;
  o.early_stopping_patience = 5;  // never early-stop in 2 epochs
  o.encoder.dim = 24;
  o.encoder.num_heads = 2;
  o.encoder.num_layers = 1;
  o.encoder.ffn_dim = 32;
  o.serializer.max_seq_len = 96;
  o.linker.top_k_rows = 6;
  return o;
}

TEST(ObsIntegrationTest, TraceAndMetricsCoverTrainingRun) {
#if !defined(KGLINK_TRACE_ENABLED)
  GTEST_SKIP() << "tracing compiled out";
#else
  data::WorldConfig wc;
  wc.scale = 0.25;
  data::World world = data::GenerateWorld(wc);
  search::SearchEngine engine = search::IndexKnowledgeGraph(world.kg);
  table::Corpus corpus = data::GenerateSemTabCorpus(
      world, data::CorpusOptions::SemTabDefaults(30));
  Rng rng(5);
  table::SplitCorpus split = table::StratifiedSplit(corpus, 0.7, 0.1, rng);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Start();

  core::KgLinkAnnotator annotator(&world.kg, &engine, TinyOptions());
  annotator.Fit(split.train, split.valid);
  ASSERT_FALSE(split.test.tables.empty());
  annotator.PredictTable(split.test.tables[0].table);

  recorder.Stop();

  // ----- trace contract -----
  std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_FALSE(events.empty());

  std::map<std::string, int> begins;
  std::vector<const obs::TraceEvent*> stack;
  for (const obs::TraceEvent& e : events) {
    if (e.phase == 'B') {
      ++begins[e.name];
      stack.push_back(&e);
    } else {
      ASSERT_EQ(e.phase, 'E');
      ASSERT_FALSE(stack.empty()) << "E without matching B: " << e.name;
      EXPECT_EQ(stack.back()->name, e.name);
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty()) << "unclosed spans in trace";

  // Every Part-1 stage, once per processed table (train + valid + the
  // predicted test table).
  int tables = static_cast<int>(split.train.tables.size() +
                                split.valid.tables.size()) + 1;
  EXPECT_EQ(begins["part1.process"], tables);
  EXPECT_EQ(begins["part1.link_rows"], tables);
  EXPECT_EQ(begins["part1.row_filter"], tables);
  EXPECT_EQ(begins["part1.column_features"], tables);
  // Every training epoch, plus the enclosing fit span.
  EXPECT_EQ(begins["train.fit"], 1);
  EXPECT_EQ(begins["train.epoch"], 2);
  EXPECT_EQ(begins["train.validate"], 2);

  std::string trace_json = recorder.ExportChromeJson();
  EXPECT_TRUE(obs::IsValidJson(trace_json));
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);

  // ----- metrics contract (the names the CLI integration relies on) -----
  EXPECT_GT(registry.GetCounter("search.topk.calls").value(), 0);
  EXPECT_GT(registry.GetCounter("search.topk.candidates").value(), 0);
  EXPECT_GT(registry.GetCounter("linker.rows.kept").value(), 0);
  EXPECT_GT(registry.GetCounter("linker.rows.dropped").value(), 0);
  EXPECT_GT(registry.GetCounter("linker.cells.linked").value(), 0);
  EXPECT_GT(registry.GetCounter("serializer.tokens.emitted").value(), 0);
  EXPECT_GT(registry.GetCounter("serializer.chunks").value(), 0);
  EXPECT_GT(registry.GetCounter("pipeline.tables.processed").value(), 0);
  EXPECT_EQ(registry.GetCounter("train.epoch.count").value(), 2);
  EXPECT_NE(registry.GetGauge("train.epoch.loss").value(), 0.0);
  EXPECT_GT(registry.GetHistogram("search.topk.latency_us").count(), 0);

  std::string metrics_json = registry.SnapshotJson();
  EXPECT_TRUE(obs::IsValidJson(metrics_json));
  for (const char* name :
       {"search.topk.calls", "linker.rows.kept", "linker.rows.dropped",
        "serializer.tokens.emitted", "train.epoch.loss"}) {
    EXPECT_NE(metrics_json.find(std::string("\"") + name + "\""),
              std::string::npos)
        << "metrics snapshot missing " << name << "\n" << metrics_json;
  }

  // ----- file export round-trip (what --trace= / --metrics= write) -----
  std::string dir = ::testing::TempDir();
  std::string trace_path = dir + "/kglink_obs_test.trace";
  std::string metrics_path = dir + "/kglink_obs_test.metrics.json";
  ASSERT_TRUE(recorder.WriteChromeJson(trace_path).ok());
  ASSERT_TRUE(registry.WriteSnapshot(metrics_path).ok());
  auto trace_back = ReadFile(trace_path);
  auto metrics_back = ReadFile(metrics_path);
  ASSERT_TRUE(trace_back.ok());
  ASSERT_TRUE(metrics_back.ok());
  EXPECT_EQ(*trace_back, trace_json);
  EXPECT_TRUE(obs::IsValidJson(*metrics_back));
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
#endif
}

// The row filter accounts every input row as kept or dropped.
TEST(ObsIntegrationTest, RowFilterAccountingAddsUp) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& kept = registry.GetCounter("linker.rows.kept");
  obs::Counter& dropped = registry.GetCounter("linker.rows.dropped");
  int64_t kept_before = kept.value();
  int64_t dropped_before = dropped.value();

  linker::LinkerConfig config;
  config.top_k_rows = 3;
  std::vector<double> scores = {0.5, 2.0, 1.0, 0.0, 4.0};
  std::vector<int> rows = linker::FilterRows(scores, config);
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(kept.value() - kept_before, 3);
  EXPECT_EQ(dropped.value() - dropped_before, 2);
}

}  // namespace
}  // namespace kglink
