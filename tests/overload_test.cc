// Overload-control unit tests under a virtual clock: the CoDel admission
// controller's episode/control-law behavior, the brownout ladder's
// monotone-with-hysteresis stepping, the process retry budget (token
// bucket + WithRetry integration), ServiceOptions validation clamps, and
// deadline-aware latency-fault truncation.
#include <gtest/gtest.h>

#include <string>

#include "robust/fault_injector.h"
#include "robust/retry.h"
#include "robust/retry_budget.h"
#include "serve/annotation_service.h"
#include "serve/overload.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace kglink::serve {
namespace {

// Virtual clock: tests advance time explicitly; nothing sleeps.
struct VClock {
  int64_t now_us = 1'000'000;
  obs::ClockMicrosFn fn() {
    return [this] { return now_us; };
  }
};

// --- CoDel admission ----------------------------------------------------

TEST(CodelAdmissionTest, NoShedWhileSojournBelowTarget) {
  VClock clock;
  CodelOptions o;
  o.target_us = 5'000;
  o.interval_us = 100'000;
  CodelAdmissionController codel(o, clock.fn());
  for (int i = 0; i < 50; ++i) {
    codel.OnDequeue(1'000);
    clock.now_us += 10'000;
    EXPECT_FALSE(codel.ShouldShed());
  }
  EXPECT_FALSE(codel.overloaded());
  EXPECT_EQ(codel.sheds(), 0);
}

TEST(CodelAdmissionTest, SustainedAboveTargetEntersOverloadAfterInterval) {
  VClock clock;
  CodelOptions o;
  o.target_us = 5'000;
  o.interval_us = 100'000;
  CodelAdmissionController codel(o, clock.fn());

  // Above-target sojourns, but the interval has not elapsed yet: no shed.
  codel.OnDequeue(10'000);
  EXPECT_FALSE(codel.ShouldShed());
  clock.now_us += 50'000;
  codel.OnDequeue(12'000);
  EXPECT_FALSE(codel.ShouldShed());

  // A full interval above target: the next dequeue flips to overloaded
  // and arrivals start shedding.
  clock.now_us += 60'000;
  codel.OnDequeue(15'000);
  EXPECT_TRUE(codel.overloaded());
  EXPECT_TRUE(codel.ShouldShed());
  EXPECT_EQ(codel.sheds(), 1);

  // The control law paces further sheds at interval/sqrt(count): the very
  // next arrival at the same instant is not shed.
  EXPECT_FALSE(codel.ShouldShed());
  clock.now_us += o.interval_us;  // >= interval/sqrt(2)
  EXPECT_TRUE(codel.ShouldShed());
}

TEST(CodelAdmissionTest, SubTargetSojournExitsTheEpisode) {
  VClock clock;
  CodelOptions o;
  o.target_us = 5'000;
  o.interval_us = 100'000;
  CodelAdmissionController codel(o, clock.fn());
  codel.OnDequeue(10'000);
  clock.now_us += o.interval_us + 1;
  codel.OnDequeue(10'000);
  EXPECT_TRUE(codel.overloaded());

  // One good dequeue ends the episode; no more shedding.
  codel.OnDequeue(1'000);
  EXPECT_FALSE(codel.overloaded());
  clock.now_us += 10 * o.interval_us;
  EXPECT_FALSE(codel.ShouldShed());
}

TEST(CodelAdmissionTest, EwmaTracksSojournAndJsonHasFields) {
  VClock clock;
  CodelAdmissionController codel(CodelOptions{}, clock.fn());
  codel.OnDequeue(8'000);
  EXPECT_EQ(codel.sojourn_ewma_us(), 8'000);
  codel.OnDequeue(16'000);
  EXPECT_GT(codel.sojourn_ewma_us(), 8'000);
  EXPECT_LT(codel.sojourn_ewma_us(), 16'000);
  std::string json = codel.SnapshotJsonFields();
  EXPECT_NE(json.find("\"sojourn_ewma_us\""), std::string::npos);
  EXPECT_NE(json.find("\"sheds\""), std::string::npos);
}

TEST(CodelAdmissionTest, ModeNamesRoundTrip) {
  EXPECT_STREQ(AdmissionModeName(AdmissionMode::kStatic), "static");
  EXPECT_STREQ(AdmissionModeName(AdmissionMode::kCodel), "codel");
  EXPECT_EQ(AdmissionModeFromName("codel"), AdmissionMode::kCodel);
  EXPECT_EQ(AdmissionModeFromName("static"), AdmissionMode::kStatic);
  EXPECT_FALSE(AdmissionModeFromName("bogus").has_value());
}

// --- Brownout ladder ----------------------------------------------------

obs::SloMonitor::Snapshot BurnSnapshot(bool burning, double short_burn,
                                       double long_burn) {
  obs::SloMonitor::Snapshot s;
  s.burning = burning;
  s.short_burn_rate = short_burn;
  s.long_burn_rate = long_burn;
  return s;
}

TEST(BrownoutTest, DisabledControllerNeverMoves) {
  VClock clock;
  BrownoutOptions o;  // enabled = false
  BrownoutController ladder(o, clock.fn());
  for (int i = 0; i < 10; ++i) {
    clock.now_us += 10'000'000;
    EXPECT_EQ(ladder.Update(BurnSnapshot(true, 100.0, 100.0)),
              BrownoutTier::kFull);
  }
  EXPECT_EQ(ladder.transitions(), 0);
}

TEST(BrownoutTest, StepsUpMonotonicallyOneRungPerDwell) {
  VClock clock;
  BrownoutOptions o;
  o.enabled = true;
  o.dwell_us = 1'000'000;
  BrownoutController ladder(o, clock.fn());
  auto burning = BurnSnapshot(true, 10.0, 10.0);

  // First Update sets the dwell origin; no instant transition.
  EXPECT_EQ(ladder.Update(burning), BrownoutTier::kFull);
  // Within the dwell: still full, no matter how hard it burns.
  clock.now_us += o.dwell_us / 2;
  EXPECT_EQ(ladder.Update(burning), BrownoutTier::kFull);
  // Each elapsed dwell climbs exactly one rung — never two.
  clock.now_us += o.dwell_us;
  EXPECT_EQ(ladder.Update(burning), BrownoutTier::kCacheOnly);
  clock.now_us += o.dwell_us;
  EXPECT_EQ(ladder.Update(burning), BrownoutTier::kPlmOnly);
  clock.now_us += o.dwell_us;
  EXPECT_EQ(ladder.Update(burning), BrownoutTier::kRefuse);
  // Top of the ladder: stays there.
  clock.now_us += o.dwell_us;
  EXPECT_EQ(ladder.Update(burning), BrownoutTier::kRefuse);
  EXPECT_EQ(ladder.transitions(), 3);
}

TEST(BrownoutTest, HysteresisBandHoldsBetweenThresholds) {
  VClock clock;
  BrownoutOptions o;
  o.enabled = true;
  o.step_up_burn = 2.0;
  o.step_down_burn = 0.5;
  o.dwell_us = 1'000'000;
  BrownoutController ladder(o, clock.fn());

  ladder.Update(BurnSnapshot(true, 10.0, 10.0));
  clock.now_us += o.dwell_us;
  ASSERT_EQ(ladder.Update(BurnSnapshot(true, 10.0, 10.0)),
            BrownoutTier::kCacheOnly);

  // Inside the band (not burning, but short burn above step_down): holds —
  // neither up nor down — no matter how many dwells pass.
  for (int i = 0; i < 5; ++i) {
    clock.now_us += o.dwell_us;
    EXPECT_EQ(ladder.Update(BurnSnapshot(false, 1.0, 1.0)),
              BrownoutTier::kCacheOnly);
  }

  // Recovered below step_down: one rung down per dwell, back to full.
  clock.now_us += o.dwell_us;
  EXPECT_EQ(ladder.Update(BurnSnapshot(false, 0.1, 1.0)),
            BrownoutTier::kFull);
  clock.now_us += o.dwell_us;
  EXPECT_EQ(ladder.Update(BurnSnapshot(false, 0.1, 0.1)),
            BrownoutTier::kFull);
  EXPECT_EQ(ladder.transitions(), 2);
}

TEST(BrownoutTest, TierNames) {
  EXPECT_STREQ(BrownoutTierName(BrownoutTier::kFull), "full");
  EXPECT_STREQ(BrownoutTierName(BrownoutTier::kCacheOnly), "cache_only");
  EXPECT_STREQ(BrownoutTierName(BrownoutTier::kPlmOnly), "plm_only");
  EXPECT_STREQ(BrownoutTierName(BrownoutTier::kRefuse), "refuse");
}

// --- Retry budget -------------------------------------------------------

TEST(RetryBudgetTest, BucketDrainsAndRefillsOnVirtualClock) {
  VClock clock;
  robust::RetryBudgetOptions o;
  o.tokens_per_second = 10.0;
  o.burst = 3.0;
  robust::RetryBudget::Global().Enable(o, clock.fn());

  EXPECT_TRUE(robust::RetryBudget::Global().TryAcquire());
  EXPECT_TRUE(robust::RetryBudget::Global().TryAcquire());
  EXPECT_TRUE(robust::RetryBudget::Global().TryAcquire());
  EXPECT_FALSE(robust::RetryBudget::Global().TryAcquire());
  EXPECT_EQ(robust::RetryBudget::Global().granted(), 3);
  EXPECT_EQ(robust::RetryBudget::Global().denied(), 1);

  // 150ms at 10 tokens/s = 1.5 tokens back: one grant, then denial again.
  // (Not exactly 1.0 worth — the refill product is floating point.)
  clock.now_us += 150'000;
  EXPECT_TRUE(robust::RetryBudget::Global().TryAcquire());
  EXPECT_FALSE(robust::RetryBudget::Global().TryAcquire());

  // Refill is capped at burst.
  clock.now_us += 10'000'000;
  EXPECT_DOUBLE_EQ(robust::RetryBudget::Global().fill(), 3.0);

  robust::RetryBudget::Global().Disable();
}

TEST(RetryBudgetTest, ExhaustedBudgetFailsWithRetryInsteadOfRetrying) {
  // A fault site that always trips: with budget, WithRetry retries to
  // max_attempts; with the budget exhausted it gives up after the first
  // attempt with kUnavailable instead of burning more attempts.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("io.read:1.0", 7)
                  .ok());
  VClock clock;
  robust::RetryBudgetOptions o;
  o.tokens_per_second = 1.0;
  o.burst = 1.0;
  robust::RetryBudget::Global().Enable(o, clock.fn());

  robust::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_us = 1;
  policy.max_backoff_us = 1;
  int calls = 0;
  auto fn = [&calls]() {
    ++calls;
    return Status::Ok();
  };
  // First run: one retry token available, then the budget denies — the
  // result is the budget's Unavailable, not the injected IoError.
  Status first = robust::WithRetry(robust::FaultSite::kIoRead, policy, fn);
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_NE(first.ToString().find("retry budget exhausted"),
            std::string::npos);
  // Second run: no tokens at all — fails before any backoff.
  Status second = robust::WithRetry(robust::FaultSite::kIoRead, policy, fn);
  EXPECT_EQ(second.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 0);  // every attempt was suppressed by the injector
  EXPECT_GE(robust::RetryBudget::Global().denied(), 2);

  robust::RetryBudget::Global().Disable();
  robust::FaultInjector::Global().Disable();
}

TEST(RetryBudgetTest, TableContextDegradesWhenBudgetExhausted) {
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0", 7)
                  .ok());
  VClock clock;
  robust::RetryBudgetOptions o;
  o.tokens_per_second = 0.001;  // effectively no refill during the test
  o.burst = 1.0;
  robust::RetryBudget::Global().Enable(o, clock.fn());

  robust::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_us = 1;
  policy.max_backoff_us = 1;
  robust::TableBudget budget;
  budget.max_failed_ops = 0;
  budget.max_retries = 64;
  robust::TableOpContext ctx(policy, budget, 1);
  // The always-tripping site forces a retry; the budget (1 token) grants
  // one, then denies — the context degrades instead of spinning through
  // max_attempts.
  EXPECT_FALSE(ctx.Attempt(robust::FaultSite::kSearchTopK));
  EXPECT_TRUE(ctx.degraded());
  EXPECT_STREQ(ctx.degrade_reason(), "retry budget exhausted");

  robust::RetryBudget::Global().Disable();
  robust::FaultInjector::Global().Disable();
}

TEST(RetryBudgetTest, DisabledBudgetNeverGates) {
  robust::RetryBudget::Global().Disable();
  EXPECT_FALSE(robust::RetryBudget::Enabled());
  std::string json = robust::RetryBudget::Global().SnapshotJson();
  EXPECT_NE(json.find("\"enabled\": false"), std::string::npos);
}

// --- ServiceOptions validation ------------------------------------------

TEST(ValidatedServiceOptionsTest, ClampsNonsenseToSaneValues) {
  ServiceOptions o;
  o.num_threads = 0;
  o.max_queue = -5;
  o.default_deadline_us = -1;
  o.codel.target_us = 0;
  o.codel.interval_us = -7;
  o.retry_budget_per_second = -3.0;
  o.retry_budget_burst = -1.0;
  o.brownout.dwell_us = -1;
  o.brownout.step_up_burn = 0.0;
  ServiceOptions v = ValidatedServiceOptions(o);
  const ServiceOptions defaults;
  EXPECT_EQ(v.num_threads, 1);
  EXPECT_EQ(v.max_queue, 1);
  EXPECT_EQ(v.default_deadline_us, 0);
  EXPECT_EQ(v.codel.target_us, defaults.codel.target_us);
  EXPECT_GE(v.codel.interval_us, v.codel.target_us);
  EXPECT_EQ(v.retry_budget_per_second, 0.0);
  EXPECT_EQ(v.retry_budget_burst, 0.0);
  EXPECT_EQ(v.brownout.dwell_us, 0);
  EXPECT_EQ(v.brownout.step_up_burn, defaults.brownout.step_up_burn);
}

TEST(ValidatedServiceOptionsTest, InvertedHysteresisBandIsPulledUnderStepUp) {
  ServiceOptions o;
  o.brownout.step_up_burn = 2.0;
  o.brownout.step_down_burn = 5.0;  // inverted: would flap
  ServiceOptions v = ValidatedServiceOptions(o);
  EXPECT_LT(v.brownout.step_down_burn, v.brownout.step_up_burn);
}

TEST(ValidatedServiceOptionsTest, IntervalShorterThanTargetIsRaised) {
  ServiceOptions o;
  o.codel.target_us = 50'000;
  o.codel.interval_us = 10'000;
  ServiceOptions v = ValidatedServiceOptions(o);
  EXPECT_EQ(v.codel.interval_us, v.codel.target_us);
}

// --- Deadline-aware latency faults --------------------------------------

TEST(LatencyFaultTest, InjectedSleepIsCappedAtRemainingDeadline) {
  // A 200ms latency rule against a 2ms deadline: the sleep must be cut to
  // the remaining budget, not run its full course.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("predict:1.0:200000", 3)
                  .ok());
  int64_t before = robust::FaultInjector::Global().latency_truncations();
  RequestContext rc;
  rc.deadline = Deadline::AfterMicros(2'000);
  Stopwatch watch;
  // Latency rules sleep then report no failure.
  EXPECT_FALSE(robust::MaybeInject(robust::FaultSite::kPredict, &rc));
  EXPECT_LT(watch.ElapsedSeconds(), 0.15);  // nowhere near 200ms
  EXPECT_EQ(robust::FaultInjector::Global().latency_truncations(),
            before + 1);
  robust::FaultInjector::Global().Disable();
}

TEST(LatencyFaultTest, CancelledRequestSkipsTheSleepEntirely) {
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("predict:1.0:200000", 3)
                  .ok());
  RequestContext rc;
  rc.cancel = CancellationToken::Cancellable();
  rc.cancel.Cancel();
  Stopwatch watch;
  EXPECT_FALSE(robust::MaybeInject(robust::FaultSite::kPredict, &rc));
  EXPECT_LT(watch.ElapsedSeconds(), 0.05);
  robust::FaultInjector::Global().Disable();
}

TEST(LatencyFaultTest, UnboundedRequestSleepsTheFullRule) {
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("predict:1.0:20000", 3)
                  .ok());
  int64_t before = robust::FaultInjector::Global().latency_truncations();
  Stopwatch watch;
  EXPECT_FALSE(robust::MaybeInject(robust::FaultSite::kPredict, nullptr));
  EXPECT_GE(watch.ElapsedSeconds(), 0.015);
  EXPECT_EQ(robust::FaultInjector::Global().latency_truncations(), before);
  robust::FaultInjector::Global().Disable();
}

}  // namespace
}  // namespace kglink::serve
