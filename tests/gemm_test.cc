// Randomized parity suite for the blocked GEMM kernels against
// nn/reference_gemm — the same discipline as search_parity_test for the
// BM25 scorers. GemmAcc / GemmAccAt must match the reference BIT-EXACTLY
// (same per-element accumulation order, -ffp-contract=off in both TUs, no
// FMA); GemmAccBt is allowed a few ULP because the reference reduces each
// dot product into a local accumulator while the fast path accumulates
// into the output directly.
#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "nn/reference_gemm.h"
#include "util/rng.h"

namespace kglink::nn {
namespace {

std::vector<float> RandomVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng.Uniform(2000)) / 1000.0f - 1.0f;
  }
  return v;
}

// Odd, non-multiple-of-block shapes on purpose: every (m, k, n) here
// exercises the microkernel's edge handling (row remainders under the 4-row
// block, column remainders under the 16-wide panels, tiny k).
struct Shape {
  int m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {3, 1, 5},    {4, 16, 16}, {5, 17, 33},
    {7, 3, 19},  {13, 29, 31}, {16, 48, 64}, {23, 5, 47}, {64, 48, 128},
};

TEST(GemmParityTest, GemmAccBitExactAcrossRandomShapes) {
  Rng rng(71);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandomVec(static_cast<size_t>(s.m) * s.k, rng);
    std::vector<float> b = RandomVec(static_cast<size_t>(s.k) * s.n, rng);
    // Nonzero initial C: the kernels accumulate, so parity must hold for
    // += semantics, not just writes into zeroed output.
    std::vector<float> c_fast =
        RandomVec(static_cast<size_t>(s.m) * s.n, rng);
    std::vector<float> c_ref = c_fast;
    gemm::GemmAcc(a.data(), b.data(), c_fast.data(), s.m, s.k, s.n);
    refgemm::GemmAcc(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
    for (size_t i = 0; i < c_fast.size(); ++i) {
      EXPECT_EQ(c_fast[i], c_ref[i])
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " at " << i;
    }
  }
}

TEST(GemmParityTest, GemmAccAtBitExactAcrossRandomShapes) {
  Rng rng(72);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandomVec(static_cast<size_t>(s.m) * s.k, rng);
    std::vector<float> dc = RandomVec(static_cast<size_t>(s.m) * s.n, rng);
    std::vector<float> db_fast =
        RandomVec(static_cast<size_t>(s.k) * s.n, rng);
    std::vector<float> db_ref = db_fast;
    gemm::GemmAccAt(a.data(), dc.data(), db_fast.data(), s.m, s.k, s.n);
    refgemm::GemmAccAt(a.data(), dc.data(), db_ref.data(), s.m, s.k, s.n);
    for (size_t i = 0; i < db_fast.size(); ++i) {
      EXPECT_EQ(db_fast[i], db_ref[i])
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " at " << i;
    }
  }
}

TEST(GemmParityTest, GemmAccBtWithinUlpsAcrossRandomShapes) {
  Rng rng(73);
  for (const Shape& s : kShapes) {
    std::vector<float> dc = RandomVec(static_cast<size_t>(s.m) * s.n, rng);
    std::vector<float> b = RandomVec(static_cast<size_t>(s.k) * s.n, rng);
    std::vector<float> da_fast =
        RandomVec(static_cast<size_t>(s.m) * s.k, rng);
    std::vector<float> da_ref = da_fast;
    gemm::GemmAccBt(dc.data(), b.data(), da_fast.data(), s.m, s.k, s.n);
    refgemm::GemmAccBt(dc.data(), b.data(), da_ref.data(), s.m, s.k, s.n);
    // The reassociated accumulation's error scales with the dot-product
    // length n and the partial-sum magnitude (inputs are in [-1, 1], so
    // partials are bounded by n) — an ULP bound on the *result* would
    // misfire whenever cancellation shrinks it. A genuinely wrong kernel
    // is off by O(1), far beyond this.
    const float tol = 32.0f * std::numeric_limits<float>::epsilon() *
                      static_cast<float>(s.n);
    for (size_t i = 0; i < da_fast.size(); ++i) {
      EXPECT_NEAR(da_fast[i], da_ref[i], tol)
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " at " << i;
    }
  }
}

TEST(GemmParityTest, KEqualsOneDegeneratesToOuterProduct) {
  Rng rng(74);
  const int m = 9;
  const int n = 21;
  std::vector<float> a = RandomVec(static_cast<size_t>(m), rng);
  std::vector<float> b = RandomVec(static_cast<size_t>(n), rng);
  std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);
  gemm::GemmAcc(a.data(), b.data(), c.data(), m, 1, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      // A single product needs no accumulation order at all — exact.
      EXPECT_EQ(c[static_cast<size_t>(i) * n + j],
                a[static_cast<size_t>(i)] * b[static_cast<size_t>(j)]);
    }
  }
}

TEST(GemmParityTest, AliasedInputsASameAsB) {
  // x^T x with a == b aliased: the kernels only read their inputs, so an
  // aliased square input must match the reference computed from a copy.
  Rng rng(75);
  const int m = 11;
  std::vector<float> x = RandomVec(static_cast<size_t>(m) * m, rng);
  std::vector<float> x_copy = x;
  std::vector<float> c_fast(static_cast<size_t>(m) * m, 0.0f);
  std::vector<float> c_ref = c_fast;
  gemm::GemmAcc(x.data(), x.data(), c_fast.data(), m, m, m);
  refgemm::GemmAcc(x_copy.data(), x_copy.data(), c_ref.data(), m, m, m);
  for (size_t i = 0; i < c_fast.size(); ++i) {
    EXPECT_EQ(c_fast[i], c_ref[i]) << "at " << i;
  }
}

TEST(GemmParityTest, RepeatedCallsAreDeterministic) {
  Rng rng(76);
  const int m = 17;
  const int k = 23;
  const int n = 29;
  std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, rng);
  std::vector<float> b = RandomVec(static_cast<size_t>(k) * n, rng);
  std::vector<float> c1(static_cast<size_t>(m) * n, 0.0f);
  std::vector<float> c2 = c1;
  gemm::GemmAcc(a.data(), b.data(), c1.data(), m, k, n);
  gemm::GemmAcc(a.data(), b.data(), c2.data(), m, k, n);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(),
                           c1.size() * sizeof(float)));
}

TEST(GemmParityTest, KernelNameIsKnown) {
  std::string name = gemm::KernelName();
  EXPECT_TRUE(name == "blocked-avx2" || name == "blocked-scalar" ||
              name == "reference")
      << name;
}

}  // namespace
}  // namespace kglink::nn
