// Concurrent chaos acceptance: the AnnotationService under 8 worker
// threads, injected search faults and a mix of live and already-expired
// deadlines. The per-request fault-injection RNG streams (keyed on the
// submission-order stream key) make every per-table status and prediction
// deterministic per seed no matter how the workers interleave — two
// identically seeded runs must agree exactly. This binary is also the
// primary ThreadSanitizer target (scripts/check.sh --tsan).
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "core/annotator.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "robust/circuit_breaker.h"
#include "robust/fault_injector.h"
#include "search/search_engine.h"
#include "serve/annotation_service.h"
#include "serve/loadgen.h"
#include "util/deadline.h"

namespace kglink::serve {
namespace {

class ConcurrentChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::WorldConfig wc;
    wc.scale = 0.25;
    world_ = new data::World(data::GenerateWorld(wc));
    engine_ = new search::SearchEngine(
        search::IndexKnowledgeGraph(world_->kg));
    table::Corpus corpus = data::GenerateSemTabCorpus(
        *world_, data::CorpusOptions::SemTabDefaults(32));
    Rng rng(5);
    split_ = new table::SplitCorpus(
        table::StratifiedSplit(corpus, 0.7, 0.1, rng));
    // One flat request stream over every table in the corpus, so the
    // concurrent runs have enough work to keep 8 threads busy.
    for (const auto* part : {&split_->train, &split_->valid, &split_->test}) {
      for (const auto& lt : part->tables) tables_.push_back(&lt.table);
    }

    core::KgLinkOptions o;
    o.epochs = 2;
    o.encoder.dim = 24;
    o.encoder.num_heads = 2;
    o.encoder.num_layers = 1;
    o.encoder.ffn_dim = 32;
    o.serializer.max_seq_len = 96;
    o.linker.top_k_rows = 8;
    o.seed = 99;
    annotator_ = new core::KgLinkAnnotator(&world_->kg, engine_, o);
    annotator_->Fit(split_->train, split_->valid);
  }
  static void TearDownTestSuite() {
    delete annotator_;
    delete split_;
    delete engine_;
    delete world_;
    tables_.clear();
  }

  void TearDown() override {
    robust::FaultInjector::Global().Disable();
    robust::BreakerRegistry::Global().Disable();
  }

  struct RunOutcome {
    std::map<std::string, int> status_counts;
    // Per submission index: terminal status + predictions.
    std::vector<std::pair<RequestStatus, std::vector<int>>> results;
  };

  // Submits every table through a fresh 8-thread service; every odd
  // submission carries an already-spent deadline. The queue is sized so
  // admission never sheds — the deterministic chaos contract covers the
  // ok/degraded split, and shed/overloaded must be exactly zero.
  static RunOutcome RunChaos(bool enable_breakers) {
    ServiceOptions so;
    so.num_threads = 8;
    so.max_queue = static_cast<int>(tables_.size()) + 1;
    so.enable_circuit_breakers = enable_breakers;
    RunOutcome out;
    AnnotationService service(annotator_, so);
    std::vector<std::future<AnnotationResult>> futures;
    for (size_t i = 0; i < tables_.size(); ++i) {
      Deadline d = (i % 2 == 1) ? Deadline::Expired() : Deadline::Infinite();
      futures.push_back(service.Submit(*tables_[i], d));
    }
    for (auto& f : futures) {
      AnnotationResult r = f.get();
      ++out.status_counts[RequestStatusName(r.status)];
      out.results.emplace_back(r.status, std::move(r.predictions));
    }
    return out;
  }

  static data::World* world_;
  static search::SearchEngine* engine_;
  static table::SplitCorpus* split_;
  static core::KgLinkAnnotator* annotator_;
  static std::vector<const table::Table*> tables_;
};
data::World* ConcurrentChaosTest::world_ = nullptr;
search::SearchEngine* ConcurrentChaosTest::engine_ = nullptr;
table::SplitCorpus* ConcurrentChaosTest::split_ = nullptr;
core::KgLinkAnnotator* ConcurrentChaosTest::annotator_ = nullptr;
std::vector<const table::Table*> ConcurrentChaosTest::tables_;

TEST_F(ConcurrentChaosTest, EightThreadChaosIsDeterministicPerSeed) {
  // Two identically seeded runs — 8 threads, 10% search faults, half the
  // requests pre-expired — must produce identical per-request statuses,
  // identical predictions and identical status counters. Breakers stay off
  // here: their rolling window orders outcomes by wall-clock completion,
  // which is the one deliberately schedule-dependent piece.
  RunOutcome runs[2];
  for (int run = 0; run < 2; ++run) {
    ASSERT_TRUE(robust::FaultInjector::Global()
                    .ConfigureFromSpec("search.topk:0.1", 42)
                    .ok());
    runs[run] = RunChaos(/*enable_breakers=*/false);
    robust::FaultInjector::Global().Disable();
  }

  EXPECT_EQ(runs[0].status_counts, runs[1].status_counts);
  ASSERT_EQ(runs[0].results.size(), runs[1].results.size());
  for (size_t i = 0; i < runs[0].results.size(); ++i) {
    EXPECT_EQ(runs[0].results[i].first, runs[1].results[i].first)
        << "request " << i;
    EXPECT_EQ(runs[0].results[i].second, runs[1].results[i].second)
        << "request " << i;
  }

  // Every pre-expired request degraded (never crashed, never partial) and
  // the sized queue kept admission out of the picture entirely.
  EXPECT_GE(runs[0].status_counts["degraded"],
            static_cast<int>(tables_.size() / 2));
  EXPECT_EQ(runs[0].status_counts["shed"], 0);
  EXPECT_EQ(runs[0].status_counts["overloaded"], 0);
  EXPECT_EQ(runs[0].status_counts["failed"], 0);
  for (size_t i = 0; i < runs[0].results.size(); ++i) {
    if (i % 2 == 1) {
      EXPECT_EQ(runs[0].results[i].first, RequestStatus::kDegraded)
          << "pre-expired request " << i;
    }
    EXPECT_EQ(runs[0].results[i].second.size(),
              static_cast<size_t>(tables_[i]->num_cols()))
        << "request " << i;
  }
}

TEST_F(ConcurrentChaosTest, SingleThreadServiceMatchesSequentialExactly) {
  // The serving harness must not perturb accuracy: a fault-free 1-thread
  // service returns bit-identical predictions to the sequential
  // PredictTable path for every table.
  std::vector<std::vector<int>> sequential;
  for (const auto* t : tables_) {
    sequential.push_back(annotator_->PredictTable(*t));
  }

  ServiceOptions so;
  so.num_threads = 1;
  so.max_queue = static_cast<int>(tables_.size()) + 1;
  AnnotationService service(annotator_, so);
  std::vector<std::future<AnnotationResult>> futures;
  for (const auto* t : tables_) futures.push_back(service.Submit(*t));
  for (size_t i = 0; i < futures.size(); ++i) {
    AnnotationResult r = futures[i].get();
    ASSERT_EQ(r.status, RequestStatus::kOk) << "table " << i;
    EXPECT_EQ(r.predictions, sequential[i]) << "table " << i;
  }
}

TEST_F(ConcurrentChaosTest, SurvivesHeavyFaultsWithBreakersEnabled) {
  // 90% search failure under 8 threads with aggressive breakers: every
  // request still resolves with full-width predictions (ok or degraded —
  // nothing sheds, fails or crashes), and the search breaker trips at
  // least once. Outcome *identity* is schedule-dependent here by design
  // (the breaker window is shared), so this test asserts survival and
  // breaker activity, not equality across runs.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:0.9", 7)
                  .ok());
  ServiceOptions so;
  so.num_threads = 8;
  so.max_queue = static_cast<int>(tables_.size()) + 1;
  so.breaker.window = 16;
  so.breaker.min_samples = 4;
  so.breaker.failure_ratio = 0.5;
  so.breaker.open_cooldown_us = 1000;  // exercise half-open probes too
  AnnotationService service(annotator_, so);

  std::vector<std::future<AnnotationResult>> futures;
  for (const auto* t : tables_) futures.push_back(service.Submit(*t));
  for (size_t i = 0; i < futures.size(); ++i) {
    AnnotationResult r = futures[i].get();
    ASSERT_TRUE(r.status == RequestStatus::kOk ||
                r.status == RequestStatus::kDegraded)
        << "request " << i << ": " << RequestStatusName(r.status);
    EXPECT_EQ(r.predictions.size(),
              static_cast<size_t>(tables_[i]->num_cols()))
        << "request " << i;
  }
  EXPECT_GE(robust::BreakerRegistry::Global()
                .ForSite(robust::FaultSite::kSearchTopK)
                .trips(),
            1);
}

TEST_F(ConcurrentChaosTest, LoadgenBatchChecksumIsByteIdenticalPerSeed) {
  // The loadgen determinism contract bench_load's --check-determinism gate
  // relies on: two identically seeded RunBatch rounds over a 4-thread
  // service with 10% search faults + 1% predict faults fold every result
  // (status, tier, predictions, degrade_reason, in submission order) to
  // the same FNV-1a checksum, while a different seed diverges. Same
  // conditions as the gate: static admission, brownout off, breakers off,
  // no deadlines — wall-clock expiry is the one schedule-dependent piece.
  const char* kFaults = "search.topk:0.1,predict:0.01";
  LoadgenOptions lo;
  lo.seed = 42;
  lo.zipf_s = 1.1;
  lo.deadline_us = 0;
  auto run = [&](uint64_t seed) {
    EXPECT_TRUE(
        robust::FaultInjector::Global().ConfigureFromSpec(kFaults, seed).ok());
    ServiceOptions so;
    so.num_threads = 4;
    so.max_queue = static_cast<int>(tables_.size()) * 4;
    so.enable_circuit_breakers = false;
    AnnotationService service(annotator_, so);
    lo.seed = seed;
    BatchResult r = RunBatch(service, tables_, 96, lo);
    robust::FaultInjector::Global().Disable();
    return r;
  };

  BatchResult a = run(42);
  BatchResult b = run(42);
  EXPECT_EQ(a.checksum, b.checksum);
  for (int i = 0; i < kNumRequestStatuses; ++i) {
    EXPECT_EQ(a.by_status[static_cast<size_t>(i)],
              b.by_status[static_cast<size_t>(i)])
        << RequestStatusName(static_cast<RequestStatus>(i));
  }
  // A different seed draws a different fault/popularity schedule; if the
  // checksum still matched, it would not be discriminating anything.
  BatchResult c = run(43);
  EXPECT_NE(a.checksum, c.checksum);
}

}  // namespace
}  // namespace kglink::serve
