// Tests for the difficulty-calibration mechanisms in the generators:
// decoy entities, header rows, scrambled tables, open-class scaling, and
// their downstream effect on the Part-1 pipeline (the Table III regime).
#include <gtest/gtest.h>

#include <set>

#include "data/corpus_gen.h"
#include "data/world.h"
#include "linker/pipeline.h"
#include "search/search_engine.h"

namespace kglink::data {
namespace {

TEST(GeneratorNoiseTest, DecoyEntitiesShareLabelsAndStayOutOfCatalog) {
  WorldConfig wc;
  wc.scale = 0.3;
  wc.duplicate_entity_prob = 0.5;
  World world = GenerateWorld(wc);
  std::set<kg::EntityId> in_catalog;
  for (const auto& [category, ids] : world.catalog) {
    in_catalog.insert(ids.begin(), ids.end());
  }
  int decoys = 0;
  int cross_typed = 0;
  for (kg::EntityId id = 0; id < world.kg.num_entities(); ++id) {
    const kg::Entity& e = world.kg.entity(id);
    if (e.is_type || in_catalog.count(id)) continue;
    // Non-catalog instance entities are decoys: same label as a real one.
    if (world.kg.FindByLabel(e.label).size() >= 2) {
      ++decoys;
      // Decoys have exactly their instance-of edge, no useful relations.
      EXPECT_EQ(world.kg.Edges(id).size(), 1u);
      auto real_ids = world.kg.FindByLabel(e.label);
      for (kg::EntityId other : real_ids) {
        if (other == id || !in_catalog.count(other)) continue;
        if (world.kg.InstanceTypes(id) != world.kg.InstanceTypes(other)) {
          ++cross_typed;
        }
      }
    }
  }
  EXPECT_GT(decoys, 20);
  EXPECT_GT(cross_typed, 3);  // about half carry a wrong type
}

TEST(GeneratorNoiseTest, OpenClassScaleOnlyGrowsOpenPools) {
  WorldConfig base;
  base.scale = 0.3;
  WorldConfig open = base;
  open.open_class_scale = 3.0;
  World a = GenerateWorld(base);
  World b = GenerateWorld(open);
  EXPECT_GT(b.Instances("musician").size(),
            2 * a.Instances("musician").size());
  EXPECT_EQ(b.Instances("city").size(), a.Instances("city").size());
  EXPECT_EQ(b.Instances("music genre").size(),
            a.Instances("music genre").size());
}

TEST(GeneratorNoiseTest, HeaderRowsAppearAndAreUnlinkable) {
  WorldConfig wc;
  wc.scale = 0.3;
  World world = GenerateWorld(wc);
  CorpusOptions opts = CorpusOptions::SemTabDefaults(30);
  opts.header_prob = 1.0;
  table::Corpus corpus = GenerateSemTabCorpus(world, opts);
  const char* header_words[] = {"Item",  "Entry",  "Title", "Record",
                                "Detail", "Info",   "Value", "Total",
                                "Amount", "When"};
  for (const auto& lt : corpus.tables) {
    for (int c = 0; c < lt.table.num_cols(); ++c) {
      const std::string& first = lt.table.at(0, c).text;
      bool is_header = false;
      for (const char* w : header_words) {
        if (first == w) is_header = true;
      }
      EXPECT_TRUE(is_header) << first;
      EXPECT_TRUE(world.kg.FindByLabel(first).empty());
    }
  }
}

TEST(GeneratorNoiseTest, ScrambledTablesLoseCandidateTypes) {
  // Pools must be large enough that a random same-category entity is
  // unlikely to be one-hop coherent by chance.
  WorldConfig wc;
  wc.scale = 0.5;
  wc.open_class_scale = 6.0;
  World world = GenerateWorld(wc);
  search::SearchEngine engine = search::IndexKnowledgeGraph(world.kg);
  linker::KgPipeline pipeline(&world.kg, &engine, {});

  auto ct_fraction = [&](double scrambled_prob) {
    CorpusOptions opts = CorpusOptions::SemTabDefaults(20, 3);
    opts.scrambled_prob = scrambled_prob;
    table::Corpus corpus = GenerateSemTabCorpus(world, opts);
    int64_t with_ct = 0, total = 0;
    for (const auto& lt : corpus.tables) {
      linker::ProcessedTable pt = pipeline.Process(lt.table);
      for (const auto& col : pt.columns) {
        ++total;
        if (!col.candidate_types.empty()) ++with_ct;
      }
    }
    return static_cast<double>(with_ct) / static_cast<double>(total);
  };
  double coherent = ct_fraction(0.0);
  double scrambled = ct_fraction(1.0);
  EXPECT_GT(coherent, scrambled + 0.2);
}

TEST(GeneratorNoiseTest, MissingEdgeProbThinsTheGraph) {
  WorldConfig dense;
  dense.scale = 0.3;
  dense.missing_edge_prob = 0.0;
  WorldConfig sparse = dense;
  sparse.missing_edge_prob = 0.5;
  EXPECT_GT(GenerateWorld(dense).kg.num_triples(),
            GenerateWorld(sparse).kg.num_triples());
}

}  // namespace
}  // namespace kglink::data
