// Additional serializer and tokenizer edge cases: extreme budgets, label
// slots at capacity, segment-id consistency, empty tables' handling at the
// component level.
#include <gtest/gtest.h>

#include "core/serializer.h"

namespace kglink::core {
namespace {

nn::Vocabulary SmallVocab() {
  return nn::Vocabulary::Build({"alpha beta gamma delta epsilon label"},
                               100000);
}

linker::ProcessedTable OneColumn(const std::string& cell, int rows) {
  std::vector<std::vector<std::string>> cells(
      static_cast<size_t>(rows), std::vector<std::string>{cell});
  linker::ProcessedTable pt;
  pt.filtered = table::Table::FromStrings("t", cells);
  pt.columns.resize(1);
  return pt;
}

TEST(SerializerEdgeTest, SegmentsParallelToTokens) {
  nn::Vocabulary vocab = SmallVocab();
  TableSerializer ser(&vocab, {});
  auto pt = OneColumn("alpha beta", 3);
  auto chunks = ser.Serialize(pt, LabelSlot::kMask, nullptr, true);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].tokens.size(), chunks[0].segments.size());
  for (int s : chunks[0].segments) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 16);
  }
}

TEST(SerializerEdgeTest, SegmentsIdentifyColumns) {
  nn::Vocabulary vocab = SmallVocab();
  TableSerializer ser(&vocab, {});
  linker::ProcessedTable pt;
  pt.filtered = table::Table::FromStrings(
      "t", {{"alpha", "beta"}, {"gamma", "delta"}});
  pt.columns.resize(2);
  auto chunks = ser.Serialize(pt, LabelSlot::kMask, nullptr, true);
  const auto& chunk = chunks[0];
  // Tokens belonging to column 0's span have segment 0; column 1's have 1.
  int c1_start = chunk.columns[1].cls_pos;
  for (int i = 0; i < c1_start; ++i) {
    EXPECT_EQ(chunk.segments[static_cast<size_t>(i)], 0);
  }
  EXPECT_EQ(chunk.segments[static_cast<size_t>(c1_start)], 1);
}

TEST(SerializerEdgeTest, LongLabelTruncatedToMaxLabelTokens) {
  nn::Vocabulary vocab = SmallVocab();
  SerializerConfig config;
  config.max_label_tokens = 2;
  TableSerializer ser(&vocab, config);
  auto pt = OneColumn("alpha", 1);
  std::vector<std::string> labels = {"alpha beta gamma delta"};
  auto gt = ser.Serialize(pt, LabelSlot::kGroundTruth, &labels, true);
  EXPECT_EQ(gt[0].columns[0].label_positions.size(), 2u);
}

TEST(SerializerEdgeTest, ManyRowsRespectPerColumnCap) {
  nn::Vocabulary vocab = SmallVocab();
  SerializerConfig config;
  config.max_tokens_per_col = 16;
  TableSerializer ser(&vocab, config);
  auto pt = OneColumn("alpha beta gamma", 100);
  auto chunks = ser.Serialize(pt, LabelSlot::kMask, nullptr, true);
  // One column: [CLS] + slot + pad-ct + cells <= 16, plus [SEP].
  EXPECT_LE(chunks[0].tokens.size(), 17u);
}

TEST(SerializerEdgeTest, UnknownWordsBecomeUnk) {
  nn::Vocabulary vocab = SmallVocab();
  TableSerializer ser(&vocab, {});
  auto pt = OneColumn("zzzz qqqq", 2);
  auto chunks = ser.Serialize(pt, LabelSlot::kMask, nullptr, true);
  int unk_count = 0;
  for (int tok : chunks[0].tokens) {
    if (tok == nn::Vocabulary::kUnk) ++unk_count;
  }
  EXPECT_GE(unk_count, 2);
}

TEST(SerializerEdgeTest, FeatureEncodingOfEmptyStringIsEmpty) {
  nn::Vocabulary vocab = SmallVocab();
  TableSerializer ser(&vocab, {});
  EXPECT_TRUE(ser.EncodeFeature("").empty());
}

}  // namespace
}  // namespace kglink::core
