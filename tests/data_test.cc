// World & corpus generator tests: structural invariants of WikiSynth and
// the statistical properties the paper's Table III depends on.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "data/corpus_gen.h"
#include "data/names.h"
#include "data/templates.h"
#include "data/world.h"
#include "table/ner.h"
#include "util/string_util.h"

namespace kglink::data {
namespace {

WorldConfig SmallWorld(uint64_t seed = 42) {
  WorldConfig c;
  c.seed = seed;
  c.scale = 0.3;
  return c;
}

TEST(NamesTest, DeterministicAndShaped) {
  Rng rng1(5);
  Rng rng2(5);
  NameGenerator g1(&rng1);
  NameGenerator g2(&rng2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(g1.PersonName(), g2.PersonName());
  }
  Rng rng3(6);
  NameGenerator g(&rng3);
  std::string person = g.PersonName();
  EXPECT_NE(person.find(' '), std::string::npos);
  EXPECT_EQ(NameGenerator::PersonAlias("LeBron James"), "L. James");
  std::string band = g.BandName();
  EXPECT_EQ(band.rfind("The ", 0), 0u);
  std::string gene = g.GeneSymbol();
  EXPECT_GE(gene.size(), 4u);
}

TEST(WorldTest, GeneratesAllCategories) {
  World world = GenerateWorld(SmallWorld());
  for (const char* cat :
       {"basketball player", "football player", "cricketer",
        "tennis player", "basketball team", "football club", "cricket club",
        "musician", "musical group", "album", "film", "actor",
        "film director", "film studio", "writer", "book", "scientist",
        "university", "protein", "gene", "company", "city", "country",
        "music genre", "industry", "sport"}) {
    EXPECT_FALSE(world.Instances(cat).empty()) << cat;
  }
}

TEST(WorldTest, PersonsAreHumanWithOccupationEdges) {
  // WikiData-style people: `instance of` = human; the fine type is an
  // `occupation` edge (the paper's Fig. 1 granularity situation).
  World world = GenerateWorld(SmallWorld());
  kg::PredicateId occupation = world.PredicateIdOf("occupation");
  int with_occupation = 0;
  for (kg::EntityId id : world.Instances("basketball player")) {
    auto types = world.kg.InstanceTypes(id);
    ASSERT_FALSE(types.empty());
    EXPECT_EQ(world.kg.entity(types[0]).label, "human");
    EXPECT_TRUE(world.kg.entity(id).is_person);
    for (const kg::Edge& e : world.kg.Edges(id)) {
      if (e.predicate == occupation && e.forward) {
        EXPECT_EQ(world.kg.entity(e.target).label, "basketball player");
        ++with_occupation;
      }
    }
  }
  // Occupation edges are subject to missing-edge noise but mostly present.
  EXPECT_GT(with_occupation,
            static_cast<int>(world.Instances("basketball player").size() /
                             2));
}

TEST(WorldTest, NonPersonInstancesKeepFineInstanceOf) {
  World world = GenerateWorld(SmallWorld());
  for (kg::EntityId id : world.Instances("basketball team")) {
    auto types = world.kg.InstanceTypes(id);
    ASSERT_FALSE(types.empty());
    EXPECT_EQ(world.kg.entity(types[0]).label, "basketball team");
  }
}

TEST(WorldTest, TypeHierarchyGranularityChain) {
  World world = GenerateWorld(SmallWorld());
  kg::EntityId bball = world.TypeId("basketball player");
  kg::EntityId athlete = world.TypeId("athlete");
  kg::EntityId human = world.TypeId("human");
  EXPECT_TRUE(world.kg.IsSubtypeOf(bball, athlete));
  EXPECT_TRUE(world.kg.IsSubtypeOf(bball, human));
  EXPECT_FALSE(world.kg.IsSubtypeOf(human, bball));
}

TEST(WorldTest, RowCoherenceViaOneHop) {
  // A player's team (when present) must be a one-hop neighbour: this is
  // the property KGLink's overlap filter exploits.
  World world = GenerateWorld(SmallWorld());
  kg::PredicateId member = world.PredicateIdOf("member of sports team");
  int checked = 0;
  for (kg::EntityId p : world.Instances("football player")) {
    for (const kg::Edge& e : world.kg.Edges(p)) {
      if (e.predicate == member && e.forward) {
        EXPECT_TRUE(world.kg.IsNeighbor(p, e.target));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(WorldTest, DeterministicForSeed) {
  World a = GenerateWorld(SmallWorld(7));
  World b = GenerateWorld(SmallWorld(7));
  EXPECT_EQ(a.kg.num_entities(), b.kg.num_entities());
  EXPECT_EQ(a.kg.num_triples(), b.kg.num_triples());
  EXPECT_EQ(a.kg.entity(100).label, b.kg.entity(100).label);
  World c = GenerateWorld(SmallWorld(8));
  EXPECT_NE(a.kg.entity(100).label, c.kg.entity(100).label);
}

TEST(WorldTest, ScaleGrowsTheWorld) {
  WorldConfig small = SmallWorld();
  WorldConfig big = SmallWorld();
  big.scale = 1.0;
  EXPECT_GT(GenerateWorld(big).kg.num_entities(),
            GenerateWorld(small).kg.num_entities());
}

TEST(TemplatesTest, LibraryIsWellFormed) {
  const auto& templates = StandardTemplates();
  EXPECT_GE(templates.size(), 15u);
  bool any_numeric_only = false;
  for (const auto& t : templates) {
    EXPECT_FALSE(t.columns.empty()) << t.name;
    if (t.anchor_category.empty()) {
      any_numeric_only = true;
      EXPECT_FALSE(t.in_semtab) << t.name;
      for (const auto& c : t.columns) {
        EXPECT_TRUE(c.kind == ColumnKind::kNumeric ||
                    c.kind == ColumnKind::kDate)
            << t.name;
      }
    }
    for (const auto& c : t.columns) {
      if (c.kind == ColumnKind::kRelated) {
        EXPECT_FALSE(c.predicate.empty()) << t.name;
        EXPECT_FALSE(c.related_category.empty()) << t.name;
      }
      EXPECT_FALSE(c.viznet_label.empty()) << t.name;
    }
  }
  EXPECT_TRUE(any_numeric_only);
}

class CorpusGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(GenerateWorld(SmallWorld()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};
World* CorpusGenTest::world_ = nullptr;

TEST_F(CorpusGenTest, SemTabHasNoNumericOrDateColumns) {
  table::Corpus corpus =
      GenerateSemTabCorpus(*world_, CorpusOptions::SemTabDefaults(40));
  EXPECT_EQ(corpus.tables.size(), 40u);
  for (const auto& lt : corpus.tables) {
    for (int c = 0; c < lt.table.num_cols(); ++c) {
      EXPECT_FALSE(lt.table.IsNumericColumn(c));
      for (int r = 0; r < lt.table.num_rows(); ++r) {
        EXPECT_NE(lt.table.at(r, c).kind, table::CellKind::kDate);
      }
    }
  }
}

TEST_F(CorpusGenTest, SemTabLabelsAreFineGrained) {
  table::Corpus corpus =
      GenerateSemTabCorpus(*world_, CorpusOptions::SemTabDefaults(40));
  std::set<std::string> names(corpus.label_names.begin(),
                              corpus.label_names.end());
  EXPECT_TRUE(names.count("basketball player") || names.count("cricketer") ||
              names.count("football player"));
  EXPECT_FALSE(names.count("name"));  // coarse label must not appear
}

TEST_F(CorpusGenTest, VizNetHasNumericColumnsAndCoarseLabels) {
  table::Corpus corpus =
      GenerateVizNetCorpus(*world_, CorpusOptions::VizNetDefaults(80));
  int numeric = 0, total = 0;
  for (const auto& lt : corpus.tables) {
    for (int c = 0; c < lt.table.num_cols(); ++c) {
      ++total;
      if (lt.table.IsNumericColumn(c)) ++numeric;
    }
  }
  EXPECT_GT(numeric, 0);
  double frac = static_cast<double>(numeric) / total;
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.4);
  std::set<std::string> names(corpus.label_names.begin(),
                              corpus.label_names.end());
  EXPECT_TRUE(names.count("name"));
  EXPECT_FALSE(names.count("basketball player"));
}

TEST_F(CorpusGenTest, ColumnLabelsMatchColumnCount) {
  table::Corpus corpus =
      GenerateVizNetCorpus(*world_, CorpusOptions::VizNetDefaults(40));
  for (const auto& lt : corpus.tables) {
    EXPECT_EQ(static_cast<int>(lt.column_labels.size()),
              lt.table.num_cols());
    for (int label : lt.column_labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, corpus.num_labels());
    }
  }
}

TEST_F(CorpusGenTest, DeterministicForSeed) {
  table::Corpus a =
      GenerateVizNetCorpus(*world_, CorpusOptions::VizNetDefaults(20, 3));
  table::Corpus b =
      GenerateVizNetCorpus(*world_, CorpusOptions::VizNetDefaults(20, 3));
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    ASSERT_EQ(a.tables[i].table.num_rows(), b.tables[i].table.num_rows());
    for (int r = 0; r < a.tables[i].table.num_rows(); ++r) {
      for (int c = 0; c < a.tables[i].table.num_cols(); ++c) {
        EXPECT_EQ(a.tables[i].table.at(r, c).text,
                  b.tables[i].table.at(r, c).text);
      }
    }
  }
}

TEST_F(CorpusGenTest, OutOfKgLexiconIsDisjointFromKgTokens) {
  OutOfKgLexicon lexicon(*world_, 123);
  // Collect KG tokens.
  std::unordered_set<std::string> kg_tokens;
  for (kg::EntityId id = 0; id < world_->kg.num_entities(); ++id) {
    for (const auto& w : SplitWords(world_->kg.entity(id).label)) {
      kg_tokens.insert(w);
    }
    for (const auto& alias : world_->kg.entity(id).aliases) {
      for (const auto& w : SplitWords(alias)) kg_tokens.insert(w);
    }
  }
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    for (const auto& w : SplitWords(lexicon.Sample("basketball player",
                                                   rng))) {
      EXPECT_FALSE(kg_tokens.count(w)) << w;
    }
    for (const auto& w : SplitWords(lexicon.Sample("city", rng))) {
      EXPECT_FALSE(kg_tokens.count(w)) << w;
    }
  }
}

TEST_F(CorpusGenTest, UnlinkableFractionProducesOutOfKgTables) {
  CorpusOptions opts = CorpusOptions::VizNetDefaults(60);
  opts.unlinkable_prob = 1.0;
  opts.scrambled_prob = 0.0;
  table::Corpus corpus = GenerateVizNetCorpus(*world_, opts);
  // Every string cell must be out-of-KG (no exact label match).
  for (const auto& lt : corpus.tables) {
    for (int r = 0; r < lt.table.num_rows(); ++r) {
      for (int c = 0; c < lt.table.num_cols(); ++c) {
        const auto& cell = lt.table.at(r, c);
        if (cell.kind != table::CellKind::kString) continue;
        EXPECT_TRUE(world_->kg.FindByLabel(cell.text).empty()) << cell.text;
      }
    }
  }
}

}  // namespace
}  // namespace kglink::data
