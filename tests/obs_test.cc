// Unit tests for the observability layer: histogram bucket boundaries,
// counter overflow/reset semantics, nested-span parenting, Chrome trace
// JSON structure (timestamps excluded from comparisons — they are the one
// nondeterministic field), and the structured logger's line format.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kglink::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, OverflowWrapsInsteadOfUb) {
  Counter c;
  c.Add(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(c.value(), std::numeric_limits<int64_t>::max());
  // One more wraps to the minimum (two's complement), not UB; a further
  // increment keeps counting from there.
  c.Add(1);
  EXPECT_EQ(c.value(), std::numeric_limits<int64_t>::min());
  c.Add(1);
  EXPECT_EQ(c.value(), std::numeric_limits<int64_t>::min() + 1);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h(HistogramBuckets{{1.0, 10.0, 100.0}});
  ASSERT_EQ(h.upper_bounds().size(), 3u);

  h.Record(0.5);    // <= 1      -> bucket 0
  h.Record(1.0);    // == bound  -> bucket 0 (le semantics)
  h.Record(1.0001); //           -> bucket 1
  h.Record(10.0);   // == bound  -> bucket 1
  h.Record(99.9);   //           -> bucket 2
  h.Record(100.0);  // == bound  -> bucket 2
  h.Record(100.5);  // overflow  -> bucket 3
  h.Record(1e9);    // overflow  -> bucket 3

  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 2);
  EXPECT_EQ(h.bucket_count(3), 2);
  EXPECT_EQ(h.count(), 8);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 100.5 + 1e9,
              1e-6);

  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.bucket_count(3), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, ExponentialBucketLayout) {
  HistogramBuckets b = HistogramBuckets::Exponential(1.0, 4.0, 5);
  EXPECT_EQ(b.upper_bounds, (std::vector<double>{1, 4, 16, 64, 256}));
}

TEST(MetricsThreadingTest, ConcurrentUpdatesObeyPublicationContract) {
  // Writers hammer a counter, a gauge and a histogram while a reader
  // repeatedly snapshots them. The histogram's release/acquire contract
  // must hold at every instant: a snapshot that reads count() first never
  // sees bucket totals *behind* that count. Totals are exact at the end.
  MetricsRegistry reg;
  Counter& counter = reg.GetCounter("mt.events");
  Gauge& gauge = reg.GetGauge("mt.level");
  Histogram& hist =
      reg.GetHistogram("mt.lat", HistogramBuckets{{1.0, 10.0, 100.0}});

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> done{false};
  std::atomic<int64_t> torn_reads{0};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      int64_t count = hist.count();  // acquire: fence for the bucket reads
      int64_t buckets = 0;
      for (size_t i = 0; i <= hist.upper_bounds().size(); ++i) {
        buckets += hist.bucket_count(i);
      }
      if (buckets < count) torn_reads.fetch_add(1);
      gauge.value();
      reg.SnapshotJson();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        counter.Add();
        gauge.Set(static_cast<double>(i));
        hist.Record(static_cast<double>((w * kPerWriter + i) % 200));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(counter.value(), static_cast<int64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(hist.count(), static_cast<int64_t>(kWriters) * kPerWriter);
  int64_t buckets = 0;
  for (size_t i = 0; i <= hist.upper_bounds().size(); ++i) {
    buckets += hist.bucket_count(i);
  }
  EXPECT_EQ(buckets, hist.count());
}

TEST(MetricsRegistryTest, SameNameSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x.calls");
  Counter& b = reg.GetCounter("x.calls");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3);
  // Distinct kinds may share a name without colliding.
  Gauge& g = reg.GetGauge("x.calls");
  g.Set(7.0);
  EXPECT_EQ(b.value(), 3);
}

TEST(MetricsRegistryTest, SnapshotJsonIsValidAndSorted) {
  MetricsRegistry reg;
  reg.GetCounter("b.two").Add(2);
  reg.GetCounter("a.one").Add(1);
  reg.GetGauge("loss").Set(0.125);
  reg.GetHistogram("lat", HistogramBuckets{{1.0, 2.0}}).Record(1.5);
  std::string json = reg.SnapshotJson();

  EXPECT_TRUE(IsValidJson(json)) << json;
  // Keys serialize sorted -> deterministic snapshots.
  EXPECT_LT(json.find("a.one"), json.find("b.two"));
  EXPECT_NE(json.find("\"a.one\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"loss\": 0.125"), std::string::npos) << json;
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos) << json;

  reg.ResetAll();
  std::string after = reg.SnapshotJson();
  EXPECT_NE(after.find("\"a.one\": 0"), std::string::npos) << after;
}

TEST(JsonUtilTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("[1, 2.5, -3e4, \"x\", true, false, null]"));
  EXPECT_TRUE(IsValidJson("{\"a\": {\"b\": [\"\\u00e9\", \"\\n\"]}}"));
  EXPECT_FALSE(IsValidJson(""));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{\"a\": 1,}"));
  EXPECT_FALSE(IsValidJson("[1] trailing"));
  EXPECT_FALSE(IsValidJson("{'a': 1}"));
  EXPECT_FALSE(IsValidJson("01"));
  EXPECT_FALSE(IsValidJson("{\"a\": nan}"));
}

TEST(JsonUtilTest, NumberFormatting) {
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(JsonNumber(-42.0), "-42");
  EXPECT_EQ(JsonNumber(0.125), "0.125");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_TRUE(IsValidJson(JsonNumber(1.0 / 3.0)));
}

TEST(JsonUtilTest, EscapeControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape("line\nfeed\rreturn"), "line\\nfeed\\rreturn");
  EXPECT_EQ(JsonEscape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(JsonEscape("\x01\x1f"), "\\u0001\\u001f");
  // Every escaped string must embed into a valid JSON document.
  for (int c = 0; c < 0x20; ++c) {
    std::string s(1, static_cast<char>(c));
    EXPECT_TRUE(IsValidJson("\"" + JsonEscape(s) + "\"")) << c;
  }
}

TEST(JsonUtilTest, EscapePassesValidUtf8Through) {
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");           // é
  EXPECT_EQ(JsonEscape("\xe6\x97\xa5\xe6\x9c\xac"),              // 日本
            "\xe6\x97\xa5\xe6\x9c\xac");
  EXPECT_EQ(JsonEscape("\xf0\x9f\x8e\x89"), "\xf0\x9f\x8e\x89");  // 🎉
}

TEST(JsonUtilTest, EscapeReplacesInvalidUtf8) {
  // Each invalid byte becomes U+FFFD so the output is always valid JSON.
  EXPECT_EQ(JsonEscape("\xff"), "\\ufffd");
  // Stray continuation byte.
  EXPECT_EQ(JsonEscape("a\x80ز"), "a\\ufffd\xd8\xb2");
  // Truncated two-byte sequence at end of input.
  EXPECT_EQ(JsonEscape("x\xc3"), "x\\ufffd");
  // Overlong encoding of '/' (0xC0 0xAF) is rejected byte by byte.
  EXPECT_EQ(JsonEscape("\xc0\xaf"), "\\ufffd\\ufffd");
  // CESU-8 style surrogate encoding (ED A0 80 = U+D800) is invalid UTF-8.
  EXPECT_EQ(JsonEscape("\xed\xa0\x80"), "\\ufffd\\ufffd\\ufffd");
  // Out-of-range 4-byte sequence (> U+10FFFF).
  EXPECT_EQ(JsonEscape("\xf5\x80\x80\x80"),
            "\\ufffd\\ufffd\\ufffd\\ufffd");
  EXPECT_TRUE(
      IsValidJson("\"" + JsonEscape("mixed \xfe garbage \xc3\x28") + "\""));
}

TEST(JsonParseTest, BuildsDomForScalarsArraysObjects) {
  std::optional<JsonValue> v =
      ParseJson("{\"n\": -2.5e1, \"b\": true, \"s\": \"hi\", "
                "\"a\": [1, null], \"o\": {\"k\": false}}");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->kind, JsonValue::Kind::kObject);
  EXPECT_DOUBLE_EQ(v->NumberOr("n", 0), -25.0);
  EXPECT_TRUE(v->BoolOr("b", false));
  EXPECT_EQ(v->StringOr("s", ""), "hi");
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].kind, JsonValue::Kind::kNull);
  const JsonValue* o = v->Find("o");
  ASSERT_NE(o, nullptr);
  EXPECT_FALSE(o->BoolOr("k", true));
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, DecodesEscapesAndSurrogatePairs) {
  std::optional<JsonValue> v =
      ParseJson("\"q\\\"b\\\\s\\/n\\nu\\u00e9p\\ud83c\\udf89\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string_value,
            "q\"b\\s/n\nu\xc3\xa9p\xf0\x9f\x8e\x89");
  // A lone high surrogate decodes to U+FFFD instead of corrupt output.
  std::optional<JsonValue> lone = ParseJson("\"\\ud800x\"");
  ASSERT_TRUE(lone.has_value());
  EXPECT_EQ(lone->string_value, "\xef\xbf\xbdx");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").has_value());
  EXPECT_FALSE(ParseJson("{\"a\":}").has_value());
  EXPECT_FALSE(ParseJson("[1,]").has_value());
  EXPECT_FALSE(ParseJson("\"unterminated").has_value());
  EXPECT_FALSE(ParseJson("\"bad\\x\"").has_value());
  EXPECT_FALSE(ParseJson("12 34").has_value());
}

TEST(JsonParseTest, RoundTripsEscapedStrings) {
  std::string nasty = "quote\" back\\ ctrl\x01\ttab nul(";
  nasty += '\0';
  nasty += ") caf\xc3\xa9 \xf0\x9f\x8e\x89";
  std::string doc = "{\"cell\": \"" + JsonEscape(nasty) + "\"}";
  std::optional<JsonValue> v = ParseJson(doc);
  ASSERT_TRUE(v.has_value()) << doc;
  EXPECT_EQ(v->StringOr("cell", ""), nasty);
}

#if defined(KGLINK_TRACE_ENABLED)

// Validates balanced, properly nested B/E events with a stack; returns the
// maximum nesting depth or -1 on imbalance. Timestamps are ignored.
int CheckBalanced(const std::vector<TraceEvent>& events) {
  std::vector<const TraceEvent*> stack;
  size_t max_depth = 0;
  for (const TraceEvent& e : events) {
    if (e.phase == 'B') {
      if (static_cast<size_t>(e.depth) != stack.size()) return -1;
      stack.push_back(&e);
      max_depth = std::max(max_depth, stack.size());
    } else if (e.phase == 'E') {
      if (stack.empty() || stack.back()->name != e.name ||
          stack.back()->depth != e.depth) {
        return -1;
      }
      stack.pop_back();
    } else {
      return -1;
    }
  }
  return stack.empty() ? static_cast<int>(max_depth) : -1;
}

TEST(TraceTest, NestedSpanParenting) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Start();
  {
    ScopedSpan outer("outer");
    EXPECT_EQ(outer.depth(), 0);
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
    {
      ScopedSpan inner("inner");
      EXPECT_EQ(inner.depth(), 1);
      ScopedSpan innermost("innermost");
      EXPECT_EQ(innermost.depth(), 2);
    }
    ScopedSpan sibling("sibling");
    EXPECT_EQ(sibling.depth(), 1);
  }
  rec.Stop();

  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 8u);  // 4 spans x (B + E)
  EXPECT_EQ(CheckBalanced(events), 3);
  // Sequential order pins the parenting: outer B, inner B, innermost B/E,
  // inner E, sibling B/E, outer E.
  std::vector<std::string> names;
  std::vector<char> phases;
  for (const auto& e : events) {
    names.push_back(e.name);
    phases.push_back(e.phase);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"outer", "inner", "innermost",
                                             "innermost", "inner", "sibling",
                                             "sibling", "outer"}));
  EXPECT_EQ(phases,
            (std::vector<char>{'B', 'B', 'B', 'E', 'E', 'B', 'E', 'E'}));
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Start();
  rec.Stop();
  {
    ScopedSpan span("ignored");
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);  // inactive span: no depth
  }
  EXPECT_EQ(rec.event_count(), 0u);
}

// Golden-structure test for the exporter: the JSON parses, contains one
// object per event with the Chrome-required keys, and B/E balance. The
// "ts" values are intentionally not compared — they are wall-clock.
TEST(TraceTest, ChromeJsonExportGolden) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Start();
  {
    ScopedSpan outer("stage \"one\"");  // quote needs escaping
    ScopedSpan inner("stage.two");
  }
  rec.Stop();
  std::string json = rec.ExportChromeJson();

  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"stage \\\"one\\\"\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\": \"stage.two\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"kglink\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"depth\": 1}"), std::string::npos);
  EXPECT_EQ(CheckBalanced(rec.Events()), 2);

  // Restarting clears the buffer: export is a snapshot, not an append log.
  rec.Start();
  rec.Stop();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(TraceTest, TimerRecordsIntoHistogram) {
  Histogram h(HistogramBuckets::LatencyMicros());
  {
    KGLINK_OBS_TIMER(h);
  }
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.sum(), 0.0);
}

#endif  // KGLINK_TRACE_ENABLED

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogSink([this](LogLevel level, const std::string& line) {
      levels_.push_back(level);
      lines_.push_back(line);
    });
    SetMinLogLevel(LogLevel::kInfo);
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetMinLogLevel(LogLevel::kInfo);
  }
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

TEST_F(LogTest, StructuredLineFormatIsByteStable) {
  KGLINK_LOG(kInfo, "train.epoch")
      .With("epoch", 3)
      .With("loss", 0.123456, 4)
      .With("model", "KGLink")
      .With("note", "two words")
      .With("ok", true);
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0],
            "[kglink] I train.epoch epoch=3 loss=0.1235 model=KGLink "
            "note=\"two words\" ok=true");
}

TEST_F(LogTest, LevelsFilter) {
  KGLINK_LOG(kDebug, "hidden").With("x", 1);
  KGLINK_LOG(kWarn, "shown");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0], "[kglink] W shown");
  EXPECT_EQ(levels_[0], LogLevel::kWarn);

  SetMinLogLevel(LogLevel::kDebug);
  KGLINK_LOG(kDebug, "now.visible");
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(lines_[1], "[kglink] D now.visible");

  SetMinLogLevel(LogLevel::kOff);
  KGLINK_LOG(kWarn, "suppressed");
  EXPECT_EQ(lines_.size(), 2u);
}

}  // namespace
}  // namespace kglink::obs
