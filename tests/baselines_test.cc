// Baseline-annotator tests: each system trains on a miniature corpus,
// predicts sane shapes, and exhibits its characteristic behaviour (MTab's
// direct label translation, HNN's first-cell dependence, RECA's related-
// table retrieval, Sudowoodo's per-column isolation).
#include <gtest/gtest.h>

#include <set>

#include "baselines/doduo.h"
#include "baselines/hnn.h"
#include "baselines/mtab.h"
#include "baselines/reca.h"
#include "baselines/sudowoodo.h"
#include "baselines/tabert.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "eval/metrics.h"
#include "search/search_engine.h"

namespace kglink::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::WorldConfig wc;
    wc.scale = 0.25;
    world_ = new data::World(data::GenerateWorld(wc));
    engine_ = new search::SearchEngine(
        search::IndexKnowledgeGraph(world_->kg));
    table::Corpus corpus = data::GenerateSemTabCorpus(
        *world_, data::CorpusOptions::SemTabDefaults(40));
    Rng rng(5);
    split_ = new table::SplitCorpus(
        table::StratifiedSplit(corpus, 0.7, 0.1, rng));
  }
  static void TearDownTestSuite() {
    delete split_;
    delete engine_;
    delete world_;
  }

  static PlmOptions FastPlm(const char* name) {
    PlmOptions o;
    o.encoder.dim = 24;
    o.encoder.num_heads = 2;
    o.encoder.num_layers = 1;
    o.encoder.ffn_dim = 32;
    o.max_seq_len = 96;
    o.epochs = 5;
    o.display_name = name;
    return o;
  }

  static void ExpectLearns(eval::ColumnAnnotator& annotator,
                           double min_train_accuracy) {
    annotator.Fit(split_->train, split_->valid);
    eval::Metrics m = annotator.Evaluate(split_->train);
    EXPECT_GT(m.accuracy, min_train_accuracy) << annotator.name();
    // Predictions must have one entry per column, in label range.
    std::vector<int> pred =
        annotator.PredictTable(split_->test.tables[0].table);
    EXPECT_EQ(pred.size(),
              split_->test.tables[0].column_labels.size());
    for (int p : pred) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, split_->train.num_labels());
    }
  }

  static data::World* world_;
  static search::SearchEngine* engine_;
  static table::SplitCorpus* split_;
};
data::World* BaselinesTest::world_ = nullptr;
search::SearchEngine* BaselinesTest::engine_ = nullptr;
table::SplitCorpus* BaselinesTest::split_ = nullptr;

TEST_F(BaselinesTest, DoduoLearns) {
  DoduoAnnotator doduo(FastPlm("Doduo"));
  EXPECT_EQ(doduo.name(), "Doduo");
  ExpectLearns(doduo, 0.15);
}

TEST_F(BaselinesTest, TabertLearnsFromSnapshot) {
  TabertAnnotator tabert(FastPlm("TaBERT"), /*snapshot_rows=*/3);
  ExpectLearns(tabert, 0.15);
}

TEST_F(BaselinesTest, SudowoodoLearnsPerColumn) {
  SudowoodoAnnotator sudo(FastPlm("Sudowoodo"));
  ExpectLearns(sudo, 0.15);
}

TEST_F(BaselinesTest, RecaLearnsWithRelatedTables) {
  RecaAnnotator reca(FastPlm("RECA"));
  ExpectLearns(reca, 0.15);
}

TEST_F(BaselinesTest, HnnLearnsFromFirstCell) {
  HnnOptions o;
  o.epochs = 6;
  HnnAnnotator hnn(&world_->kg, engine_, o);
  ExpectLearns(hnn, 0.15);
}

TEST_F(BaselinesTest, MtabTranslatesKgTypesDirectly) {
  MtabOptions o;
  MtabAnnotator mtab(&world_->kg, engine_, o);
  mtab.Fit(split_->train, split_->valid);
  // SemTab regime: labels ARE KG type labels, so MTab should be strong.
  eval::Metrics m = mtab.Evaluate(split_->test);
  EXPECT_GT(m.accuracy, 0.5);
}

TEST_F(BaselinesTest, MtabFallsBackOnUnlinkableColumns) {
  MtabOptions o;
  MtabAnnotator mtab(&world_->kg, engine_, o);
  mtab.Fit(split_->train, split_->valid);
  // A numeric table has no candidate types anywhere: every prediction is
  // the majority-class fallback.
  table::Table numeric = table::Table::FromStrings(
      "nums", {{"1", "2"}, {"3", "4"}, {"5", "6"}});
  std::vector<int> pred = mtab.PredictTable(numeric);
  ASSERT_EQ(pred.size(), 2u);
  EXPECT_EQ(pred[0], pred[1]);  // same fallback everywhere
}

TEST_F(BaselinesTest, HnnOnlyConsultsTheFirstCell) {
  HnnOptions o;
  o.epochs = 4;
  HnnAnnotator hnn(&world_->kg, engine_, o);
  hnn.Fit(split_->train, split_->valid);
  // Two tables identical in row 0, wildly different below: HNN cannot tell
  // them apart (by construction).
  table::Table a = table::Table::FromStrings(
      "a", {{"Rust"}, {"alpha"}, {"beta"}});
  table::Table b = table::Table::FromStrings(
      "b", {{"Rust"}, {"gamma"}, {"delta"}});
  EXPECT_EQ(hnn.PredictTable(a), hnn.PredictTable(b));
}

TEST_F(BaselinesTest, EvaluateWithPredictionsReturnsFlatVectors) {
  DoduoAnnotator doduo(FastPlm("Doduo"));
  doduo.Fit(split_->train, split_->valid);
  std::vector<int> gold, pred;
  eval::Metrics m =
      doduo.EvaluateWithPredictions(split_->test, &gold, &pred);
  EXPECT_EQ(gold.size(), pred.size());
  EXPECT_EQ(static_cast<int64_t>(gold.size()), m.total);
}

}  // namespace
}  // namespace kglink::baselines
