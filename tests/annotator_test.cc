// End-to-end KgLinkAnnotator tests: the model + serializer wiring, tiny
// fit/predict runs, ablation switches, sigma telemetry, and persistence.
// These use a miniature world so each Fit stays under a second or two.
#include "core/annotator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "core/model.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "eval/metrics.h"
#include "search/search_engine.h"

namespace kglink::core {
namespace {

// Shared tiny environment.
class AnnotatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::WorldConfig wc;
    wc.scale = 0.25;
    world_ = new data::World(data::GenerateWorld(wc));
    engine_ = new search::SearchEngine(
        search::IndexKnowledgeGraph(world_->kg));
    table::Corpus corpus = data::GenerateSemTabCorpus(
        *world_, data::CorpusOptions::SemTabDefaults(46));
    Rng rng(3);
    split_ = new table::SplitCorpus(
        table::StratifiedSplit(corpus, 0.7, 0.1, rng));
  }
  static void TearDownTestSuite() {
    delete split_;
    delete engine_;
    delete world_;
  }

  static KgLinkOptions FastOptions() {
    KgLinkOptions o;
    o.epochs = 3;
    o.encoder.dim = 24;
    o.encoder.num_heads = 2;
    o.encoder.num_layers = 1;
    o.encoder.ffn_dim = 32;
    o.serializer.max_seq_len = 96;
    o.linker.top_k_rows = 8;
    return o;
  }

  static data::World* world_;
  static search::SearchEngine* engine_;
  static table::SplitCorpus* split_;
};
data::World* AnnotatorTest::world_ = nullptr;
search::SearchEngine* AnnotatorTest::engine_ = nullptr;
table::SplitCorpus* AnnotatorTest::split_ = nullptr;

TEST_F(AnnotatorTest, ModelShapesAndParameterNamesUnique) {
  Rng rng(1);
  KgLinkModelConfig config;
  config.encoder.vocab_size = 60;
  config.encoder.dim = 16;
  config.encoder.num_heads = 2;
  config.encoder.num_layers = 1;
  config.encoder.ffn_dim = 24;
  config.num_labels = 5;
  KgLinkModel model(config, rng);
  Rng fwd(2);
  nn::Tensor h = model.Encode({2, 7, 9, 3}, {0, 0, 1, 1}, fwd, false);
  EXPECT_EQ(h.rows(), 4);
  EXPECT_EQ(h.cols(), 16);
  nn::Tensor fv = model.FeatureVector({5, 6}, fwd, false);
  EXPECT_EQ(fv.rows(), 1);
  nn::Tensor composed = model.Compose(nn::Rows(h, {0}), fv);
  EXPECT_EQ(composed.cols(), 16);
  nn::Tensor logits = model.Classify(composed);
  EXPECT_EQ(logits.cols(), 5);
  nn::Tensor voc = model.ProjectToVocab(nn::Rows(h, {1, 2}));
  EXPECT_EQ(voc.rows(), 2);
  EXPECT_EQ(voc.cols(), 60);

  std::set<std::string> names;
  for (const auto& p : model.Parameters()) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
  }
}

TEST_F(AnnotatorTest, EmptyFeatureVectorIsZero) {
  Rng rng(1);
  KgLinkModelConfig config;
  config.encoder.vocab_size = 20;
  config.encoder.dim = 8;
  config.encoder.num_heads = 2;
  config.encoder.num_layers = 1;
  config.encoder.ffn_dim = 8;
  config.num_labels = 2;
  KgLinkModel model(config, rng);
  Rng fwd(2);
  nn::Tensor fv = model.FeatureVector({}, fwd, false);
  for (float v : fv.data()) EXPECT_EQ(v, 0.0f);
}

TEST_F(AnnotatorTest, GatedSumComposition) {
  Rng rng(1);
  KgLinkModelConfig config;
  config.encoder.vocab_size = 20;
  config.encoder.dim = 8;
  config.encoder.num_heads = 2;
  config.encoder.num_layers = 1;
  config.encoder.ffn_dim = 8;
  config.num_labels = 2;
  config.composition = Composition::kGatedSum;
  KgLinkModel model(config, rng);
  nn::Tensor cls = nn::Tensor::Full({1, 8}, 1.0f);
  nn::Tensor zero_fv = nn::Tensor::Zeros({1, 8});
  nn::Tensor out = model.Compose(cls, zero_fv);
  // Gated sum with a zero feature vector adds sigmoid-gated zero: output
  // equals cls exactly when the projection of zero is zero (bias-only),
  // here bias is zero-initialized.
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(out.data()[i], 1.0f, 1e-5f);
}

TEST_F(AnnotatorTest, FitLearnsAndPredicts) {
  KgLinkAnnotator annotator(&world_->kg, engine_, FastOptions());
  annotator.Fit(split_->train, split_->valid);
  eval::Metrics train_metrics = annotator.Evaluate(split_->train);
  // Must beat chance (1/num_labels) by a wide margin on the train split.
  EXPECT_GT(train_metrics.accuracy,
            3.0 / split_->train.num_labels());
  std::vector<int> pred =
      annotator.PredictTable(split_->test.tables[0].table);
  EXPECT_EQ(pred.size(),
            split_->test.tables[0].column_labels.size());
  for (int p : pred) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, split_->train.num_labels());
  }
  EXPECT_GT(annotator.fit_seconds(), 0.0);
  EXPECT_FALSE(annotator.epoch_stats().empty());
}

TEST_F(AnnotatorTest, PredictBeforeFitDies) {
  KgLinkAnnotator annotator(&world_->kg, engine_, FastOptions());
  EXPECT_DEATH(annotator.PredictTable(split_->test.tables[0].table),
               "before Fit");
}

TEST_F(AnnotatorTest, AblationSwitchesRun) {
  for (int variant = 0; variant < 3; ++variant) {
    KgLinkOptions o = FastOptions();
    o.epochs = 1;
    if (variant == 0) o.use_mask_task = false;
    if (variant == 1) {
      o.use_candidate_types = false;
      o.use_feature_vector = false;
    }
    if (variant == 2) o.use_feature_vector = false;
    KgLinkAnnotator annotator(&world_->kg, engine_, o);
    annotator.Fit(split_->train, split_->valid);
    eval::Metrics m = annotator.Evaluate(split_->valid);
    EXPECT_GE(m.accuracy, 0.0);
  }
}

TEST_F(AnnotatorTest, FrozenSigmasStayAtInit) {
  KgLinkOptions o = FastOptions();
  o.epochs = 2;
  o.freeze_sigmas = true;
  o.init_log_var0 = 0.8f;
  o.init_log_var1 = 1.2f;
  KgLinkAnnotator annotator(&world_->kg, engine_, o);
  annotator.Fit(split_->train, split_->valid);
  for (const auto& stats : annotator.epoch_stats()) {
    EXPECT_FLOAT_EQ(stats.log_var0, 0.8f);
    EXPECT_FLOAT_EQ(stats.log_var1, 1.2f);
  }
}

TEST_F(AnnotatorTest, SigmasMoveWhenTrainable) {
  KgLinkOptions o = FastOptions();
  o.epochs = 2;
  KgLinkAnnotator annotator(&world_->kg, engine_, o);
  annotator.Fit(split_->train, split_->valid);
  const auto& stats = annotator.epoch_stats().back();
  EXPECT_TRUE(stats.log_var0 != 0.0f || stats.log_var1 != 0.0f);
}

TEST_F(AnnotatorTest, SaveLoadReproducesPredictions) {
  KgLinkOptions o = FastOptions();
  o.epochs = 1;
  KgLinkAnnotator a(&world_->kg, engine_, o);
  a.Fit(split_->train, split_->valid);
  std::string prefix =
      (std::filesystem::temp_directory_path() / "kglink_annotator_test")
          .string();
  ASSERT_TRUE(a.Save(prefix).ok());

  KgLinkAnnotator b(&world_->kg, engine_, o);
  ASSERT_TRUE(b.Load(prefix).ok());
  for (int i = 0; i < 3 && i < static_cast<int>(split_->test.tables.size());
       ++i) {
    const auto& t = split_->test.tables[static_cast<size_t>(i)].table;
    EXPECT_EQ(a.PredictTable(t), b.PredictTable(t));
  }
  for (const char* suffix : {".vocab", ".labels", ".weights"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(AnnotatorTest, PreprocessExposesPart1) {
  KgLinkAnnotator annotator(&world_->kg, engine_, FastOptions());
  linker::ProcessedTable pt =
      annotator.Preprocess(split_->train.tables[0].table);
  EXPECT_EQ(pt.columns.size(),
            static_cast<size_t>(split_->train.tables[0].table.num_cols()));
}

}  // namespace
}  // namespace kglink::core
