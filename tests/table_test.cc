// Table / NER / corpus tests: cell-kind detection, numeric statistics, row
// selection, stratified splitting, subsampling.
#include "table/table.h"

#include <gtest/gtest.h>

#include "table/corpus.h"
#include "table/ner.h"
#include "util/rng.h"

namespace kglink::table {
namespace {

TEST(NerTest, ClassifiesNumbers) {
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("42"), CellKind::kNumber);
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("-3.5"), CellKind::kNumber);
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("1,234"), CellKind::kNumber);
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell(" 17 "), CellKind::kNumber);
}

TEST(NerTest, ClassifiesDates) {
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("1984-03-05"),
            CellKind::kDate);
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("3/5/1984"),
            CellKind::kDate);
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("March 5, 1984"),
            CellKind::kDate);
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("5 March 1984"),
            CellKind::kDate);
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("March 1984"),
            CellKind::kDate);
}

TEST(NerTest, PlainYearIsNumberNotDate) {
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("1984"), CellKind::kNumber);
}

TEST(NerTest, ClassifiesStringsAndEmpty) {
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("LeBron James"),
            CellKind::kString);
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell(""), CellKind::kEmpty);
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("  "), CellKind::kEmpty);
  EXPECT_EQ(NamedEntityRecognizer::ClassifyCell("March and April"),
            CellKind::kString);
}

TEST(NerTest, PersonHeuristic) {
  EXPECT_TRUE(NamedEntityRecognizer::LooksLikePerson("LeBron James"));
  EXPECT_TRUE(NamedEntityRecognizer::LooksLikePerson("W. G. Grace"));
  EXPECT_TRUE(NamedEntityRecognizer::LooksLikePerson("Mary-Jane O'Neil"));
  EXPECT_FALSE(NamedEntityRecognizer::LooksLikePerson("lebron james"));
  EXPECT_FALSE(NamedEntityRecognizer::LooksLikePerson("Single"));
  EXPECT_FALSE(NamedEntityRecognizer::LooksLikePerson("A B C D E"));
  EXPECT_FALSE(NamedEntityRecognizer::LooksLikePerson("Item 42"));
}

TEST(TableTest, FromStringsDetectsKindsAndParsesNumbers) {
  Table t = Table::FromStrings("t1", {{"Alice Smith", "42", "1990-01-02"},
                                      {"Bob Jones", "17.5", "2001-12-31"}});
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.num_cols(), 3);
  EXPECT_EQ(t.at(0, 0).kind, CellKind::kString);
  EXPECT_EQ(t.at(0, 1).kind, CellKind::kNumber);
  EXPECT_DOUBLE_EQ(t.at(1, 1).number, 17.5);
  EXPECT_EQ(t.at(1, 2).kind, CellKind::kDate);
}

TEST(TableTest, NumericColumnDetection) {
  Table t = Table::FromStrings(
      "t2", {{"1", "x", ""}, {"2", "3", ""}, {"3", "y", ""}});
  EXPECT_TRUE(t.IsNumericColumn(0));
  EXPECT_FALSE(t.IsNumericColumn(1));  // mixed
  EXPECT_FALSE(t.IsNumericColumn(2));  // all empty
}

TEST(TableTest, ColumnStats) {
  Table t = Table::FromStrings("t3", {{"1"}, {"2"}, {"3"}, {"10"}});
  NumericStats s = t.ColumnStats(0);
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.variance, (9 + 4 + 1 + 36) / 4.0);
}

TEST(TableTest, SelectRowsReorders) {
  Table t = Table::FromStrings("t4", {{"a"}, {"b"}, {"c"}});
  Table sel = t.SelectRows({2, 0});
  EXPECT_EQ(sel.num_rows(), 2);
  EXPECT_EQ(sel.at(0, 0).text, "c");
  EXPECT_EQ(sel.at(1, 0).text, "a");
  EXPECT_EQ(sel.id(), "t4");
}

Corpus MakeCorpus(int per_class, int classes) {
  Corpus corpus;
  corpus.name = "test";
  for (int c = 0; c < classes; ++c) {
    corpus.label_names.push_back("class" + std::to_string(c));
  }
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      LabeledTable lt;
      lt.table = Table::FromStrings(
          "t" + std::to_string(c) + "_" + std::to_string(i), {{"x", "y"}});
      lt.column_labels = {c, (c + 1) % classes};
      corpus.tables.push_back(std::move(lt));
    }
  }
  return corpus;
}

TEST(CorpusTest, HistogramAndCounts) {
  Corpus corpus = MakeCorpus(5, 3);
  EXPECT_EQ(corpus.num_labeled_columns(), 30);
  auto hist = corpus.LabelHistogram();
  ASSERT_EQ(hist.size(), 3u);
  for (int64_t h : hist) EXPECT_EQ(h, 10);
}

TEST(CorpusTest, StratifiedSplitProportionsAndPartition) {
  Corpus corpus = MakeCorpus(20, 4);
  Rng rng(5);
  SplitCorpus split = StratifiedSplit(corpus, 0.7, 0.1, rng);
  EXPECT_EQ(split.train.tables.size() + split.valid.tables.size() +
                split.test.tables.size(),
            corpus.tables.size());
  // Stratified: each class contributes ~70% of its tables to train.
  auto count_first_label = [](const Corpus& c, int label) {
    int n = 0;
    for (const auto& lt : c.tables) {
      if (lt.column_labels[0] == label) ++n;
    }
    return n;
  };
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(count_first_label(split.train, c), 14);
    EXPECT_EQ(count_first_label(split.valid, c), 2);
    EXPECT_EQ(count_first_label(split.test, c), 4);
  }
  // Label vocabulary shared.
  EXPECT_EQ(split.test.label_names, corpus.label_names);
}

TEST(CorpusTest, SplitIsDeterministicGivenSeed) {
  Corpus corpus = MakeCorpus(10, 2);
  Rng rng1(7);
  Rng rng2(7);
  SplitCorpus a = StratifiedSplit(corpus, 0.7, 0.1, rng1);
  SplitCorpus b = StratifiedSplit(corpus, 0.7, 0.1, rng2);
  ASSERT_EQ(a.train.tables.size(), b.train.tables.size());
  for (size_t i = 0; i < a.train.tables.size(); ++i) {
    EXPECT_EQ(a.train.tables[i].table.id(), b.train.tables[i].table.id());
  }
}

TEST(CorpusTest, TinyStrataKeepOneTrainingSample) {
  Corpus corpus = MakeCorpus(1, 3);
  Rng rng(9);
  SplitCorpus split = StratifiedSplit(corpus, 0.7, 0.1, rng);
  EXPECT_EQ(split.train.tables.size(), 3u);
}

TEST(CorpusTest, SubsampleTables) {
  Corpus corpus = MakeCorpus(10, 2);
  Rng rng(11);
  Corpus sub = SubsampleTables(corpus, 0.4, rng);
  EXPECT_EQ(sub.tables.size(), 8u);  // 0.4 * 20
  EXPECT_EQ(sub.label_names, corpus.label_names);
  Rng rng2(11);
  Corpus sub2 = SubsampleTables(corpus, 0.4, rng2);
  for (size_t i = 0; i < sub.tables.size(); ++i) {
    EXPECT_EQ(sub.tables[i].table.id(), sub2.tables[i].table.id());
  }
}

}  // namespace
}  // namespace kglink::table
