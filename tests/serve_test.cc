// AnnotationService unit tests: deadline short-circuiting at every gated
// site, admission control (enqueue / shed / refuse), shutdown draining,
// health reporting and the circuit-breaker integration. The concurrent
// chaos acceptance lives in concurrent_chaos_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/annotator.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "obs/flight_recorder.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/request_telemetry.h"
#include "robust/circuit_breaker.h"
#include "robust/fault_injector.h"
#include "search/search_engine.h"
#include "serve/annotation_service.h"
#include "store/snapshot_store.h"
#include "store/snapshot_writer.h"
#include "util/csv.h"
#include "util/deadline.h"

namespace kglink::serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::WorldConfig wc;
    wc.scale = 0.25;
    world_ = new data::World(data::GenerateWorld(wc));
    engine_ = new search::SearchEngine(
        search::IndexKnowledgeGraph(world_->kg));
    table::Corpus corpus = data::GenerateSemTabCorpus(
        *world_, data::CorpusOptions::SemTabDefaults(24));
    Rng rng(5);
    split_ = new table::SplitCorpus(
        table::StratifiedSplit(corpus, 0.7, 0.1, rng));

    core::KgLinkOptions o;
    o.epochs = 2;
    o.encoder.dim = 24;
    o.encoder.num_heads = 2;
    o.encoder.num_layers = 1;
    o.encoder.ffn_dim = 32;
    o.serializer.max_seq_len = 96;
    o.linker.top_k_rows = 8;
    o.seed = 99;
    annotator_ = new core::KgLinkAnnotator(&world_->kg, engine_, o);
    annotator_->Fit(split_->train, split_->valid);
  }
  static void TearDownTestSuite() {
    delete annotator_;
    delete split_;
    delete engine_;
    delete world_;
  }

  void TearDown() override {
    robust::FaultInjector::Global().Disable();
    robust::BreakerRegistry::Global().Disable();
    obs::FlightRecorder::Global().Disable();
  }

  static const table::Table& TestTable(size_t i) {
    return split_->test.tables[i % split_->test.tables.size()].table;
  }

  // The suite-wide annotator is shared across tests, and a snapshot reload
  // rebinds it to views borrowed from a test-local SnapshotStore. Declare
  // this guard *before* the store and service so it destructs last and
  // points the annotator back at the suite-owned KG/engine after the
  // borrowed generations are gone.
  struct RebindGuard {
    ~RebindGuard() { annotator_->Rebind(&world_->kg, engine_); }
  };

  // Writes a snapshot of the suite world with the given generation stamp
  // to a test-unique path and returns the path.
  static std::string WriteWorldSnapshot(uint64_t generation) {
    std::string path =
        ::testing::TempDir() + "serve_test_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        "_gen" + std::to_string(generation);
    store::WriterOptions wo;
    wo.generation = generation;
    EXPECT_TRUE(store::WriteSnapshot(path, world_->kg, *engine_, wo).ok());
    return path;
  }

  static data::World* world_;
  static search::SearchEngine* engine_;
  static table::SplitCorpus* split_;
  static core::KgLinkAnnotator* annotator_;
};
data::World* ServeTest::world_ = nullptr;
search::SearchEngine* ServeTest::engine_ = nullptr;
table::SplitCorpus* ServeTest::split_ = nullptr;
core::KgLinkAnnotator* ServeTest::annotator_ = nullptr;

// --- Deadline / cancellation propagation through AnnotateTable ----------

TEST_F(ServeTest, ExpiredDeadlineShortCircuitsToDegraded) {
  const table::Table& t = TestTable(0);
  RequestContext rc;
  rc.deadline = Deadline::Expired();
  core::AnnotateOutcome out = annotator_->AnnotateTable(t, &rc);

  EXPECT_TRUE(out.status.ok());
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degrade_reason, "deadline");
  // Never partial: the degraded path still predicts every column, and the
  // result is exactly the PLM-only prediction set.
  ASSERT_EQ(out.predictions.size(), static_cast<size_t>(t.num_cols()));
  core::AnnotateOutcome plm_only = annotator_->AnnotateDegraded(t, "x");
  EXPECT_EQ(out.predictions, plm_only.predictions);
}

TEST_F(ServeTest, CancelledRequestReportsCancelledNotDeadline) {
  const table::Table& t = TestTable(0);
  RequestContext rc;
  rc.cancel = CancellationToken::Cancellable();
  rc.cancel.Cancel();
  // Cancellation must win even when the deadline is also gone.
  rc.deadline = Deadline::Expired();
  core::AnnotateOutcome out = annotator_->AnnotateTable(t, &rc);

  EXPECT_TRUE(out.status.ok());
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degrade_reason, "cancelled");
  EXPECT_EQ(out.predictions.size(), static_cast<size_t>(t.num_cols()));
}

TEST_F(ServeTest, DeadlineBurnedAtSearchSiteDegradesMidPipeline) {
  // Every BM25 retrieval sleeps 20ms but succeeds; a 5ms deadline expires
  // while the first cell is being linked, so the deadline check at the
  // *next* gated search.topk attempt must flip the table to the degraded
  // PLM-only path — full-width predictions, reason "deadline", no crash.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0:20000", 3)
                  .ok());
  const table::Table& t = TestTable(1);
  RequestContext rc;
  rc.deadline = Deadline::AfterMillis(5);
  core::AnnotateOutcome out = annotator_->AnnotateTable(t, &rc);

  EXPECT_TRUE(out.status.ok());
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degrade_reason, "deadline");
  EXPECT_EQ(out.predictions.size(), static_cast<size_t>(t.num_cols()));
}

TEST_F(ServeTest, HardPredictFaultYieldsUnavailableNotCrash) {
  // The predict site fails hard every attempt: the outcome surfaces a
  // non-OK status (the service maps it to kFailed) instead of crashing or
  // returning fabricated predictions.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("predict:1.0", 3)
                  .ok());
  const table::Table& t = TestTable(0);
  core::AnnotateOutcome out = annotator_->AnnotateTable(t, nullptr);
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kUnavailable);
}

// --- Service: concurrency, admission control, shutdown ------------------

TEST_F(ServeTest, ConcurrentServiceMatchesSequentialPredictions) {
  std::vector<std::vector<int>> sequential;
  for (size_t i = 0; i < split_->test.tables.size(); ++i) {
    sequential.push_back(annotator_->PredictTable(TestTable(i)));
  }

  ServiceOptions so;
  so.num_threads = 4;
  so.max_queue = 64;
  AnnotationService service(annotator_, so);
  std::vector<std::future<AnnotationResult>> futures;
  for (size_t i = 0; i < split_->test.tables.size(); ++i) {
    futures.push_back(service.Submit(TestTable(i)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    AnnotationResult r = futures[i].get();
    EXPECT_EQ(r.status, RequestStatus::kOk) << "table " << i;
    EXPECT_EQ(r.predictions, sequential[i]) << "table " << i;
  }
  EXPECT_EQ(service.completed(RequestStatus::kOk),
            static_cast<int64_t>(futures.size()));
}

TEST_F(ServeTest, FullQueueShedsToInlineDegradedRun) {
  // One slow worker (every retrieval sleeps 5ms) and a queue of one:
  // rapid-fire submissions overflow admission, and the overflow requests
  // run the degraded PLM-only path inline with status kShed.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0:5000", 3)
                  .ok());
  ServiceOptions so;
  so.num_threads = 1;
  so.max_queue = 1;
  AnnotationService service(annotator_, so);

  constexpr int kRequests = 4;
  std::vector<std::future<AnnotationResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(service.Submit(TestTable(static_cast<size_t>(i))));
  }
  int shed = 0;
  for (int i = 0; i < kRequests; ++i) {
    AnnotationResult r = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(r.status == RequestStatus::kOk ||
                r.status == RequestStatus::kShed)
        << RequestStatusName(r.status);
    EXPECT_EQ(r.predictions.size(),
              static_cast<size_t>(TestTable(static_cast<size_t>(i)).num_cols()));
    if (r.status == RequestStatus::kShed) {
      ++shed;
      EXPECT_EQ(r.degrade_reason, "shed");
    }
  }
  // With a >100ms-busy worker and four back-to-back submissions, at least
  // one must have overflowed the single queue slot.
  EXPECT_GE(shed, 1);
  EXPECT_EQ(service.completed(RequestStatus::kOk) +
                service.completed(RequestStatus::kShed),
            static_cast<int64_t>(kRequests));
}

TEST_F(ServeTest, SpentDeadlineOnFullQueueIsRefusedOutright) {
  // Occupy the worker with a slow request, fill the queue, then submit a
  // request whose deadline is already gone: shedding would be pointless,
  // so admission refuses it with kOverloaded and empty predictions.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0:5000", 3)
                  .ok());
  ServiceOptions so;
  so.num_threads = 1;
  so.max_queue = 1;
  AnnotationService service(annotator_, so);

  auto busy = service.Submit(TestTable(0));
  // Wait for the worker to pop the busy request so the queue slot is free
  // (it then stays busy for >100ms of injected latency).
  while (service.queue_depth() > 0) {
    std::this_thread::yield();
  }
  auto queued = service.Submit(TestTable(1));  // fills the only slot
  auto refused = service.Submit(TestTable(2), Deadline::Expired());

  AnnotationResult r = refused.get();
  EXPECT_EQ(r.status, RequestStatus::kOverloaded);
  EXPECT_FALSE(r.error.ok());
  EXPECT_TRUE(r.predictions.empty());
  busy.get();
  queued.get();
}

TEST_F(ServeTest, ShutdownDrainsQueueThenRefusesNewWork) {
  ServiceOptions so;
  so.num_threads = 1;
  so.max_queue = 16;
  AnnotationService service(annotator_, so);
  std::vector<std::future<AnnotationResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit(TestTable(static_cast<size_t>(i))));
  }
  service.Shutdown();
  // Every request submitted before Shutdown still resolves (drained, not
  // dropped)...
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, RequestStatus::kOk);
  }
  // ...and new work is refused.
  AnnotationResult late = service.Submit(TestTable(0)).get();
  EXPECT_EQ(late.status, RequestStatus::kOverloaded);
  EXPECT_NE(late.error.message().find("shut down"), std::string::npos);
}

TEST_F(ServeTest, SubmittedCancellationYieldsCancelledStatus) {
  ServiceOptions so;
  so.num_threads = 1;
  AnnotationService service(annotator_, so);
  CancellationToken cancel = CancellationToken::Cancellable();
  cancel.Cancel();  // fired before the worker ever sees it
  AnnotationResult r =
      service.Submit(TestTable(0), Deadline::Infinite(), cancel).get();
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  EXPECT_EQ(r.degrade_reason, "cancelled");
  EXPECT_EQ(r.predictions.size(),
            static_cast<size_t>(TestTable(0).num_cols()));
}

TEST_F(ServeTest, HealthJsonReflectsServiceState) {
  ServiceOptions so;
  so.num_threads = 2;
  so.max_queue = 8;
  AnnotationService service(annotator_, so);
  service.Submit(TestTable(0)).get();

  std::string health = service.HealthJson();
  EXPECT_NE(health.find("\"accepting\": true"), std::string::npos) << health;
  EXPECT_NE(health.find("\"threads\": 2"), std::string::npos) << health;
  EXPECT_NE(health.find("\"max_queue\": 8"), std::string::npos) << health;
  EXPECT_NE(health.find("\"ok\": 1"), std::string::npos) << health;
  // Breakers are enabled while the service runs, so their states appear.
  EXPECT_NE(health.find("\"search.topk\": \"closed\""), std::string::npos)
      << health;

  service.Shutdown();
  health = service.HealthJson();
  EXPECT_NE(health.find("\"accepting\": false"), std::string::npos) << health;
  // Shutdown disabled the breakers again; the section disappears.
  EXPECT_EQ(health.find("\"breakers\""), std::string::npos) << health;
}

// --- Per-request telemetry, sliding-window health, flight recorder -------

TEST_F(ServeTest, StageTelemetrySumsWithinEndToEndLatency) {
  ServiceOptions so;
  so.num_threads = 2;
  so.max_queue = 16;
  AnnotationService service(annotator_, so);
  std::vector<std::future<AnnotationResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit(TestTable(static_cast<size_t>(i))));
  }
  for (auto& f : futures) {
    AnnotationResult r = f.get();
    ASSERT_EQ(r.status, RequestStatus::kOk);
    // The core invariant: exclusive stage times partition the request, so
    // their sum never exceeds the end-to-end latency.
    EXPECT_LE(r.telemetry.TotalStageUs(),
              static_cast<uint64_t>(r.total_us()));
    // The service itself always accounts queue wait and the post-process
    // remainder, independent of the build-time telemetry gate.
    EXPECT_EQ(r.telemetry.stage_count(obs::Stage::kQueueWait), 1u);
    EXPECT_GE(r.telemetry.stage_count(obs::Stage::kPostProcess), 1u);
#if defined(KGLINK_TELEMETRY_ENABLED)
    // Library-layer stages only populate when instrumentation is compiled
    // in: one link pass, one encode pass, and per linked cell either a TopK
    // retrieval or a cell-cache hit (earlier tests may have warmed the
    // process-wide cache).
    EXPECT_EQ(r.telemetry.stage_count(obs::Stage::kLink), 1u);
    EXPECT_EQ(r.telemetry.stage_count(obs::Stage::kEncode), 1u);
    EXPECT_GE(r.telemetry.stage_count(obs::Stage::kTopK) +
                  r.telemetry.cache_hits,
              1u);
    // Nested subtraction never wraps.
    EXPECT_LE(r.telemetry.exclusive_stage_us(obs::Stage::kLink),
              r.telemetry.stage_micros(obs::Stage::kLink));
#endif
  }
}

TEST_F(ServeTest, HealthJsonReportsWindowedLatencyAndSloBurn) {
  ServiceOptions so;
  so.num_threads = 1;
  so.slo_target_us = 1;  // everything violates: the burn path must light up
  AnnotationService service(annotator_, so);
  for (int i = 0; i < 4; ++i) {
    service.Submit(TestTable(static_cast<size_t>(i))).get();
  }
  auto doc = obs::ParseJson(service.HealthJson());
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* window = doc->Find("window");
  ASSERT_NE(window, nullptr);
  EXPECT_DOUBLE_EQ(window->NumberOr("count", -1.0), 4.0);
  EXPECT_GT(window->NumberOr("p99_us", 0.0), 0.0);
  EXPECT_GE(window->NumberOr("p999_us", 0.0),
            window->NumberOr("p50_us", 0.0));
  const obs::JsonValue* slo = doc->Find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_DOUBLE_EQ(slo->NumberOr("target_us", -1.0), 1.0);
  EXPECT_TRUE(slo->BoolOr("burning", false));
  const obs::JsonValue* short_window = slo->Find("short");
  ASSERT_NE(short_window, nullptr);
  EXPECT_DOUBLE_EQ(short_window->NumberOr("violations", -1.0), 4.0);
  EXPECT_GT(short_window->NumberOr("burn_rate", 0.0), 1.0);
}

TEST_F(ServeTest, FlightRecorderCapturesInducedSlowRequest) {
  // Every retrieval sleeps 20ms but succeeds, so the request completes kOk
  // well past the 10ms recorder threshold — it must land in the ring with
  // its full stage breakdown.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0:20000", 3)
                  .ok());
  obs::FlightRecorderOptions fro;
  fro.threshold_us = 10'000;
  obs::FlightRecorder::Global().Configure(fro);

  ServiceOptions so;
  so.num_threads = 1;
  AnnotationService service(annotator_, so);
  AnnotationResult r = service.Submit(TestTable(0)).get();
  ASSERT_EQ(r.status, RequestStatus::kOk);
  ASSERT_GE(r.total_us(), 10'000);

  std::vector<std::string> records = obs::FlightRecorder::Global().Records();
  ASSERT_GE(records.size(), 1u);
  auto doc = obs::ParseJson(records.back());
  ASSERT_TRUE(doc.has_value()) << records.back();
  EXPECT_EQ(doc->StringOr("trigger", ""), "threshold");
  EXPECT_EQ(doc->StringOr("status", ""), "ok");
  EXPECT_GE(doc->NumberOr("total_us", 0.0), 10'000.0);
  const obs::JsonValue* telemetry = doc->Find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  const obs::JsonValue* stages = telemetry->Find("stages");
  ASSERT_NE(stages, nullptr);
  // Post-process (the serving remainder) is always accounted; the linker
  // stage timings additionally show up when telemetry is compiled in.
  EXPECT_GE(stages->NumberOr("post_process_us", -1.0), 0.0);
#if defined(KGLINK_TELEMETRY_ENABLED)
  // The injected 20ms sleeps run in the robust gate ahead of the cache
  // check and the retrieval itself, so they are attributed to the link
  // stage (exclusive) — that is what must dominate this record.
  EXPECT_GE(stages->NumberOr("link_us", 0.0), 10'000.0);
  EXPECT_GE(stages->NumberOr("topk_us", -1.0), 0.0);  // present
#endif
}

// --- Circuit-breaker integration ----------------------------------------

TEST_F(ServeTest, RepeatedHardFailuresTripTheSearchBreaker) {
  // Every retrieval fails hard: each table records one post-retry failure
  // at search.topk, and after min_samples of those the breaker trips open.
  // Later tables then short-circuit (fail fast to the degraded path)
  // instead of burning retries.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0", 3)
                  .ok());
  ServiceOptions so;
  so.num_threads = 1;
  so.max_queue = 16;
  so.breaker.window = 8;
  so.breaker.min_samples = 3;
  so.breaker.failure_ratio = 0.5;
  so.breaker.open_cooldown_us = 60'000'000;  // stays open for this test
  AnnotationService service(annotator_, so);

  int64_t short_circuits_before =
      obs::MetricsRegistry::Global()
          .GetCounter("robust.breaker.search.topk.short_circuits")
          .value();
  for (int i = 0; i < 6; ++i) {
    AnnotationResult r = service.Submit(TestTable(static_cast<size_t>(i))).get();
    EXPECT_EQ(r.status, RequestStatus::kDegraded);
    EXPECT_EQ(r.predictions.size(),
              static_cast<size_t>(TestTable(static_cast<size_t>(i)).num_cols()));
  }
  robust::CircuitBreaker& breaker = robust::BreakerRegistry::Global().ForSite(
      robust::FaultSite::kSearchTopK);
  EXPECT_EQ(breaker.state(), robust::BreakerState::kOpen);
  EXPECT_GE(breaker.trips(), 1);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("robust.breaker.search.topk.short_circuits")
                .value(),
            short_circuits_before);
}

// --- Overload control: CoDel admission and the brownout ladder -----------

TEST_F(ServeTest, QueueDepthStaysBoundedUnderSustainedSubmit) {
  // One worker pinned by 2ms-per-retrieval latency faults while the caller
  // submits far more work than the queue holds, never waiting on results:
  // the depth observed before every submit must respect the hard bound,
  // every future must still resolve, and the overflow must show up as
  // sheds (or refusals) rather than queue growth.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0:2000", 3)
                  .ok());
  ServiceOptions so;
  so.num_threads = 1;
  so.max_queue = 4;
  so.admission = AdmissionMode::kCodel;
  so.codel.target_us = 1'000;
  so.codel.interval_us = 10'000;
  AnnotationService service(annotator_, so);

  constexpr int kRequests = 40;
  std::vector<std::future<AnnotationResult>> futures;
  int max_depth = 0;
  for (int i = 0; i < kRequests; ++i) {
    max_depth = std::max(max_depth, service.queue_depth());
    futures.push_back(service.Submit(TestTable(static_cast<size_t>(i))));
  }
  EXPECT_LE(max_depth, so.max_queue);
  int64_t resolved = 0;
  for (auto& f : futures) {
    AnnotationResult r = f.get();
    ++resolved;
    ASSERT_TRUE(r.status == RequestStatus::kOk ||
                r.status == RequestStatus::kShed ||
                r.status == RequestStatus::kOverloaded)
        << RequestStatusName(r.status);
  }
  EXPECT_EQ(resolved, kRequests);
  // 40 submissions against 1 slow worker and 4 slots cannot all be
  // admitted; the overflow resolved without ever growing the queue.
  EXPECT_GE(service.completed(RequestStatus::kShed) +
                service.completed(RequestStatus::kOverloaded),
            1);
  EXPECT_LE(service.queue_depth(), so.max_queue);
}

TEST_F(ServeTest, BrownoutLadderClimbsMonotonicallyUnderVirtualClock) {
  // Virtual clock + a 1us SLO target: every completion is a violation, so
  // the burn signal stays lit and each request (with one dwell period
  // advanced between them) climbs exactly one rung — full, cache_only,
  // plm_only — until admission refuses at the top.
  int64_t now_us = 1'000'000;
  ServiceOptions so;
  so.num_threads = 1;
  so.slo_target_us = 1;
  so.slo_short_window_us = 10'000'000;
  so.slo_long_window_us = 60'000'000;
  so.brownout.enabled = true;
  so.brownout.dwell_us = 50'000;
  so.brownout.step_up_burn = 1.0;
  so.clock = [&now_us] { return now_us; };
  AnnotationService service(annotator_, so);

  std::vector<BrownoutTier> observed;
  std::vector<AnnotationResult> results;
  for (int i = 0; i < 4; ++i) {
    results.push_back(service.Submit(TestTable(static_cast<size_t>(i))).get());
    observed.push_back(service.brownout_tier());
    now_us += so.brownout.dwell_us * 2;
  }
  // Monotone ascent, at most one rung per completion.
  for (size_t i = 1; i < observed.size(); ++i) {
    int prev = static_cast<int>(observed[i - 1]);
    int cur = static_cast<int>(observed[i]);
    EXPECT_GE(cur, prev) << "rung " << i;
    EXPECT_LE(cur - prev, 1) << "rung " << i;
  }
  EXPECT_EQ(service.brownout_tier(), BrownoutTier::kRefuse);

  // Each request runs at the tier read at its dequeue, and the ladder
  // steps at completion — so the served tier trails the observed tier by
  // one request: full, full, cache_only, plm_only.
  EXPECT_EQ(results[0].tier, BrownoutTier::kFull);
  EXPECT_EQ(results[1].tier, BrownoutTier::kFull);
  EXPECT_EQ(results[2].tier, BrownoutTier::kCacheOnly);
  // No faults and no deadline: the cache-only run completes ok, and the
  // tier marker is stamped into its degrade_reason for eval bookkeeping.
  EXPECT_EQ(results[2].status, RequestStatus::kOk);
  EXPECT_EQ(results[2].degrade_reason, "brownout:cache_only");
  EXPECT_EQ(results[3].tier, BrownoutTier::kPlmOnly);
  EXPECT_EQ(results[3].status, RequestStatus::kDegraded);
  EXPECT_EQ(results[3].degrade_reason, "brownout:plm_only");

  // At the refuse rung new arrivals are rejected at admission.
  AnnotationResult refused = service.Submit(TestTable(0)).get();
  EXPECT_EQ(refused.status, RequestStatus::kOverloaded);
  EXPECT_EQ(refused.tier, BrownoutTier::kRefuse);
  EXPECT_TRUE(refused.predictions.empty());
  EXPECT_NE(refused.error.message().find("brownout"), std::string::npos);

  EXPECT_EQ(service.tier_completed(BrownoutTier::kFull), 2);
  EXPECT_EQ(service.tier_completed(BrownoutTier::kCacheOnly), 1);
  EXPECT_EQ(service.tier_completed(BrownoutTier::kPlmOnly), 1);
  EXPECT_EQ(service.tier_completed(BrownoutTier::kRefuse), 1);

  // The ladder state is an operator-visible health field.
  std::string health = service.HealthJson();
  EXPECT_NE(health.find("\"tier\": \"refuse\""), std::string::npos) << health;
}

// --- Batched encode drain ------------------------------------------------

TEST_F(ServeTest, BatchedDrainMatchesSequentialPredictions) {
  constexpr size_t kRequests = 24;
  std::vector<std::vector<int>> sequential;
  for (size_t i = 0; i < kRequests; ++i) {
    sequential.push_back(annotator_->PredictTable(TestTable(i)));
  }

  obs::Histogram& batch_size = obs::MetricsRegistry::Global().GetHistogram(
      "serve.encode.batch_size", obs::HistogramBuckets::Exponential(1, 2, 7));
  const int64_t drains_before = batch_size.count();
  const double drained_before = batch_size.sum();

  ServiceOptions so;
  so.num_threads = 2;
  so.max_queue = 64;
  so.encode_batch = 4;
  AnnotationService service(annotator_, so);
  std::vector<std::future<AnnotationResult>> futures;
  for (size_t i = 0; i < kRequests; ++i) {
    futures.push_back(service.Submit(TestTable(i)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    AnnotationResult r = futures[i].get();
    EXPECT_EQ(r.status, RequestStatus::kOk) << "table " << i;
    // The batched forward is bit-identical to sequential inference, so the
    // predictions must match exactly — not approximately.
    EXPECT_EQ(r.predictions, sequential[i]) << "table " << i;
  }
  EXPECT_EQ(service.completed(RequestStatus::kOk),
            static_cast<int64_t>(kRequests));

  // Every worker wakeup recorded its achieved drain size, and with 24
  // near-simultaneous submissions against 2 workers at least one drain
  // must have picked up more than one request (sum strictly exceeds the
  // number of drains).
  const int64_t drains = batch_size.count() - drains_before;
  const double drained = batch_size.sum() - drained_before;
  EXPECT_GE(drains, 1);
  EXPECT_GT(drained, static_cast<double>(drains));
}

TEST_F(ServeTest, BatchDeadlineTriageDegradesInsteadOfWaiting) {
  // Every retrieval sleeps 3ms (the gate sleeps even on cache hits), so a
  // full-tier table run takes tens of milliseconds. One worker: a blocker
  // request seeds the work EWMA and pins the worker while two more requests
  // queue behind it; the worker then drains both as one batch. The member
  // whose 1ms deadline cannot survive an estimated two-request batch is
  // triaged onto the degraded path with reason "batch_deadline" and
  // resolves without waiting for the batch forward.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0:3000", 3)
                  .ok());
  ServiceOptions so;
  so.num_threads = 1;
  so.max_queue = 16;
  so.encode_batch = 4;
  AnnotationService service(annotator_, so);

  auto blocker = service.Submit(TestTable(0));
  while (service.queue_depth() > 0) {
    std::this_thread::yield();  // worker picked the blocker up
  }
  auto unhurried = service.Submit(TestTable(1));
  auto hurried = service.Submit(TestTable(2), Deadline::AfterMillis(1));

  EXPECT_EQ(blocker.get().status, RequestStatus::kOk);
  AnnotationResult slow = unhurried.get();
  EXPECT_EQ(slow.status, RequestStatus::kOk);
  EXPECT_EQ(slow.predictions.size(),
            static_cast<size_t>(TestTable(1).num_cols()));
  AnnotationResult fast = hurried.get();
  EXPECT_EQ(fast.status, RequestStatus::kDegraded);
  EXPECT_EQ(fast.degrade_reason, "batch_deadline");
  // Triage still answers full-width via the PLM-only path.
  EXPECT_EQ(fast.predictions.size(),
            static_cast<size_t>(TestTable(2).num_cols()));
}

TEST_F(ServeTest, BatchedChaosBadTokenAndTruncationUnderLoad) {
  // Regression for the two encode-path process aborts: a corrupt token id
  // and an over-length encoder input. The annotator clamps its encoder
  // window up to the serializer's chunk budget, so chunks always fit — the
  // genuinely reachable over-length input at serve time is the KG feature
  // sequence, whose token cap is configured independently. A local
  // annotator with a 512-token feature cap against a 32-token encoder
  // window makes feature encodes over-length, and a 25% bad-token fault
  // corrupts encodes at random — under multi-threaded batched load the
  // service must keep the process alive, fail only the poisoned requests
  // (per-request InvalidArgument), truncate the rest, and answer
  // everything.
  core::KgLinkOptions o;
  o.epochs = 1;
  o.encoder.dim = 16;
  o.encoder.num_heads = 2;
  o.encoder.num_layers = 1;
  o.encoder.ffn_dim = 24;
  o.encoder.max_seq_len = 16;  // raised to the 32-token serializer budget
  o.serializer.max_seq_len = 32;
  o.serializer.max_feature_tokens = 512;
  o.linker.top_k_rows = 8;
  o.seed = 17;
  core::KgLinkAnnotator local(&world_->kg, engine_, o);
  // Fit itself crosses the truncation path on every chunk (training-side
  // regression for clamped [CLS] and dropped distillation positions).
  local.Fit(split_->train, split_->valid);

  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("encode.bad_token:0.25", 11)
                  .ok());
  const int64_t truncated_before = obs::MetricsRegistry::Global()
                                       .GetCounter("encode.truncated")
                                       .value();
  const int64_t bad_before = obs::MetricsRegistry::Global()
                                 .GetCounter("encode.bad_token_id")
                                 .value();

  ServiceOptions so;
  so.num_threads = 4;
  so.max_queue = 64;
  so.encode_batch = 4;
  AnnotationService service(&local, so);
  constexpr int kRequests = 32;
  std::vector<std::future<AnnotationResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(service.Submit(TestTable(static_cast<size_t>(i))));
  }
  int failed = 0;
  for (int i = 0; i < kRequests; ++i) {
    AnnotationResult r = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(r.status == RequestStatus::kOk ||
                r.status == RequestStatus::kFailed)
        << "request " << i << ": " << RequestStatusName(r.status);
    if (r.status == RequestStatus::kFailed) {
      ++failed;
      EXPECT_EQ(r.error.code(), StatusCode::kInvalidArgument)
          << r.error.message();
    } else {
      EXPECT_EQ(r.predictions.size(),
                static_cast<size_t>(
                    TestTable(static_cast<size_t>(i)).num_cols()));
    }
  }
  // Reaching here at all is the headline assertion: zero process deaths.
  EXPECT_EQ(service.completed(RequestStatus::kOk) +
                service.completed(RequestStatus::kFailed),
            static_cast<int64_t>(kRequests));
  // At 25% injection over 32 requests, at least one poisoned encode is a
  // statistical certainty — and it surfaced as a counted per-request
  // failure, not an abort.
  EXPECT_GE(failed, 1);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("encode.bad_token_id")
                .value(),
            bad_before);
  // Every chunk exceeds the 48-token encoder window, so serving recorded
  // truncations instead of dying on the old length check.
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("encode.truncated")
                .value(),
            truncated_before);
}

// --- Snapshot hot reload -------------------------------------------------

TEST_F(ServeTest, SnapshotReloadSwapsGenerationsWithIdenticalPredictions) {
  std::vector<std::vector<int>> baseline;
  for (int i = 0; i < 4; ++i) {
    baseline.push_back(annotator_->PredictTable(TestTable(static_cast<size_t>(i))));
  }

  RebindGuard guard;
  store::SnapshotStore store;
  ServiceOptions so;
  so.num_threads = 2;
  so.max_queue = 16;
  AnnotationService service(annotator_, so);
  service.AttachSnapshotStore(&store);
  EXPECT_EQ(service.serving_snapshot(), nullptr);  // nothing loaded yet

  ASSERT_TRUE(service.ReloadSnapshot(WriteWorldSnapshot(7)).ok());
  auto serving = service.serving_snapshot();
  ASSERT_NE(serving, nullptr);
  EXPECT_EQ(serving->generation, 7u);
  for (int i = 0; i < 4; ++i) {
    AnnotationResult r = service.Submit(TestTable(static_cast<size_t>(i))).get();
    ASSERT_EQ(r.status, RequestStatus::kOk);
    EXPECT_EQ(r.predictions, baseline[static_cast<size_t>(i)])
        << "snapshot-backed prediction diverged, table " << i;
  }

  // Second reload swaps generations again; the retired generation dies
  // only after the service lets go of it.
  std::weak_ptr<const store::LoadedSnapshot> retired = serving;
  serving.reset();
  ASSERT_TRUE(service.ReloadSnapshot(WriteWorldSnapshot(8)).ok());
  ASSERT_NE(service.serving_snapshot(), nullptr);
  EXPECT_EQ(service.serving_snapshot()->generation, 8u);
  EXPECT_TRUE(retired.expired());
  for (int i = 0; i < 4; ++i) {
    AnnotationResult r = service.Submit(TestTable(static_cast<size_t>(i))).get();
    ASSERT_EQ(r.status, RequestStatus::kOk);
    EXPECT_EQ(r.predictions, baseline[static_cast<size_t>(i)]);
  }

  std::string health = service.HealthJson();
  EXPECT_NE(health.find("\"snapshot\": {\"attached\": true"),
            std::string::npos)
      << health;
  EXPECT_NE(health.find("\"generation\": 8"), std::string::npos) << health;
  EXPECT_NE(health.find("\"reloading\": false"), std::string::npos) << health;
  service.Shutdown();
}

TEST_F(ServeTest, CorruptReloadRollsBackAndKeepsServing) {
  RebindGuard guard;
  store::SnapshotStore store;
  ServiceOptions so;
  so.num_threads = 1;
  AnnotationService service(annotator_, so);
  service.AttachSnapshotStore(&store);
  ASSERT_TRUE(service.ReloadSnapshot(WriteWorldSnapshot(3)).ok());
  std::vector<int> before = service.Submit(TestTable(0)).get().predictions;

  // A corrupt candidate: good bytes with one flipped in the middle.
  std::string bad_path = WriteWorldSnapshot(4);
  auto bytes = ReadFile(bad_path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = *bytes;
  corrupt[corrupt.size() / 2] = static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x01);
  ASSERT_TRUE(WriteFile(bad_path, corrupt).ok());

  Status s = service.ReloadSnapshot(bad_path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  // Rollback: the previous generation keeps serving, bit for bit.
  ASSERT_NE(service.serving_snapshot(), nullptr);
  EXPECT_EQ(service.serving_snapshot()->generation, 3u);
  AnnotationResult r = service.Submit(TestTable(0)).get();
  EXPECT_EQ(r.status, RequestStatus::kOk);
  EXPECT_EQ(r.predictions, before);
  // The corrupt file was quarantined out of the load path...
  EXPECT_FALSE(ReadFile(bad_path).ok());
  EXPECT_TRUE(ReadFile(bad_path + ".corrupt").ok());
  // ...and the failure is surfaced for operators.
  std::string health = service.HealthJson();
  EXPECT_NE(health.find("\"last_error\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"generation\": 3"), std::string::npos) << health;
  service.Shutdown();
}

TEST_F(ServeTest, ReloadWithRequestsInFlightResolvesEveryFuture) {
  // Every retrieval sleeps 2ms, so requests are reliably mid-annotator
  // when the reload quiesces; the swap must wait for them, and every
  // future — submitted before, during and after — must still resolve.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0:2000", 3)
                  .ok());
  RebindGuard guard;
  store::SnapshotStore store;
  ServiceOptions so;
  so.num_threads = 2;
  so.max_queue = 32;
  AnnotationService service(annotator_, so);
  service.AttachSnapshotStore(&store);
  ASSERT_TRUE(service.ReloadSnapshot(WriteWorldSnapshot(1)).ok());

  std::vector<std::future<AnnotationResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit(TestTable(static_cast<size_t>(i))));
  }
  ASSERT_TRUE(service.ReloadSnapshot(WriteWorldSnapshot(2)).ok());
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit(TestTable(static_cast<size_t>(i))));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    AnnotationResult r = futures[i].get();
    ASSERT_TRUE(r.status == RequestStatus::kOk ||
                r.status == RequestStatus::kShed)
        << "request " << i << ": " << RequestStatusName(r.status);
    EXPECT_EQ(r.predictions.size(),
              static_cast<size_t>(TestTable(i % 6).num_cols()));
  }
  ASSERT_NE(service.serving_snapshot(), nullptr);
  EXPECT_EQ(service.serving_snapshot()->generation, 2u);
  service.Shutdown();
}

}  // namespace
}  // namespace kglink::serve
