// Batched padded encoder inference: per-sequence parity against the
// sequential Forward path (bit-exact in inference), the masked-attention
// edge cases (fully-padded rows, L=1, uniform lengths), truncation inside
// a batch, the cached positional slice's freshness under in-place
// parameter updates, and the concurrent batched forward the serving drain
// relies on (this test is on the check.sh --tsan list).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/tensor.h"
#include "obs/metrics.h"

namespace kglink::nn {
namespace {

EncoderConfig SmallConfig() {
  EncoderConfig c;
  c.vocab_size = 50;
  c.max_seq_len = 32;
  c.dim = 16;
  c.num_heads = 2;
  c.num_layers = 2;
  c.ffn_dim = 24;
  c.dropout = 0.0f;
  return c;
}

std::vector<int> TokenSeq(int len, int offset = 0) {
  std::vector<int> t(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) t[static_cast<size_t>(i)] = (offset + i * 3) % 50;
  return t;
}

// Runs ForwardBatch over `sequences` and checks each output bit-equal to
// the sequential Forward of the same sequence.
void ExpectBatchedMatchesSequential(
    const TransformerEncoder& enc,
    const std::vector<std::vector<int>>& sequences,
    const std::vector<std::vector<int>>* segments = nullptr) {
  std::vector<EncoderBatchItem> items(sequences.size());
  for (size_t i = 0; i < sequences.size(); ++i) {
    items[i].token_ids = &sequences[i];
    if (segments != nullptr) items[i].segment_ids = &(*segments)[i];
  }
  Rng batch_rng(7);
  std::vector<Tensor> batched = enc.ForwardBatch(items, batch_rng, false);
  ASSERT_EQ(batched.size(), sequences.size());
  for (size_t i = 0; i < sequences.size(); ++i) {
    Rng seq_rng(7);
    Tensor expected =
        segments != nullptr
            ? enc.Forward(sequences[i], (*segments)[i], seq_rng, false)
            : enc.Forward(sequences[i], seq_rng, false);
    ASSERT_EQ(batched[i].rows(), expected.rows()) << "sequence " << i;
    ASSERT_EQ(batched[i].cols(), expected.cols()) << "sequence " << i;
    for (size_t j = 0; j < expected.data().size(); ++j) {
      EXPECT_EQ(batched[i].data()[j], expected.data()[j])
          << "sequence " << i << " element " << j;
    }
  }
}

TEST(EncoderBatchTest, MixedLengthsMatchSequentialBitExact) {
  Rng init(11);
  TransformerEncoder enc(SmallConfig(), init);
  ExpectBatchedMatchesSequential(
      enc, {TokenSeq(5), TokenSeq(12, 9), TokenSeq(3, 21), TokenSeq(9, 4)});
}

TEST(EncoderBatchTest, SingleElementBatchMatchesSequential) {
  Rng init(12);
  TransformerEncoder enc(SmallConfig(), init);
  ExpectBatchedMatchesSequential(enc, {TokenSeq(7)});
}

TEST(EncoderBatchTest, LengthOneSequencesNextToLongOnes) {
  // The L=1 member softmaxes over a single key (probability exactly 1)
  // while sharing the padded planes with a much longer member.
  Rng init(13);
  TransformerEncoder enc(SmallConfig(), init);
  ExpectBatchedMatchesSequential(
      enc, {TokenSeq(1), TokenSeq(16, 5), TokenSeq(1, 30)});
}

TEST(EncoderBatchTest, UniformLengthsNoPaddingMatchSequential) {
  // All lengths equal: pad_len == every length, so no padded row exists
  // anywhere — the batch degenerates to a stacked no-mask forward.
  Rng init(14);
  TransformerEncoder enc(SmallConfig(), init);
  ExpectBatchedMatchesSequential(
      enc, {TokenSeq(8), TokenSeq(8, 3), TokenSeq(8, 17)});
}

TEST(EncoderBatchTest, SegmentsMatchSequentialBitExact) {
  Rng init(15);
  TransformerEncoder enc(SmallConfig(), init);
  std::vector<std::vector<int>> sequences = {TokenSeq(6), TokenSeq(10, 8)};
  std::vector<std::vector<int>> segments = {{0, 0, 0, 1, 1, 1},
                                            {0, 0, 1, 1, 1, 1, 1, 1, 1, 1}};
  ExpectBatchedMatchesSequential(enc, sequences, &segments);
}

TEST(EncoderBatchTest, OverlongMemberTruncatesInsideBatch) {
  Rng init(16);
  EncoderConfig cfg = SmallConfig();
  cfg.max_seq_len = 8;
  TransformerEncoder enc(cfg, init);
  auto& truncated =
      obs::MetricsRegistry::Global().GetCounter("encode.truncated");
  int64_t before = truncated.value();

  std::vector<std::vector<int>> sequences = {TokenSeq(12), TokenSeq(4, 6)};
  std::vector<EncoderBatchItem> items(sequences.size());
  for (size_t i = 0; i < sequences.size(); ++i) {
    items[i].token_ids = &sequences[i];
  }
  Rng rng(7);
  std::vector<Tensor> batched = enc.ForwardBatch(items, rng, false);
  EXPECT_EQ(batched[0].rows(), 8);
  EXPECT_EQ(batched[1].rows(), 4);
  EXPECT_EQ(truncated.value(), before + 1);

  // The truncated member equals sequentially encoding the clipped prefix.
  Rng r2(7);
  Tensor prefix = enc.Forward(TokenSeq(8), r2, false);
  for (size_t j = 0; j < prefix.data().size(); ++j) {
    EXPECT_EQ(batched[0].data()[j], prefix.data()[j]);
  }
}

// ----- MaskedAttention edge cases ---------------------------------------

TEST(MaskedAttentionTest, PaddedQueryRowsAreExactlyZero) {
  Rng rng(21);
  const int pad = 5;
  const int dim = 8;
  const std::vector<int> lens = {2, 1, 5};
  const int total = static_cast<int>(lens.size()) * pad;
  Tensor q = Tensor::Randn({total, dim}, 1.0f, rng);
  Tensor k = Tensor::Randn({total, dim}, 1.0f, rng);
  Tensor v = Tensor::Randn({total, dim}, 1.0f, rng);
  Tensor o = MaskedAttention(q, k, v, /*num_heads=*/2,
                             1.0f / std::sqrt(4.0f), lens, pad);
  ASSERT_EQ(o.rows(), total);
  for (size_t b = 0; b < lens.size(); ++b) {
    for (int r = lens[b]; r < pad; ++r) {
      for (int c = 0; c < dim; ++c) {
        EXPECT_EQ(o.data()[static_cast<size_t>(
                      (static_cast<int>(b) * pad + r) * dim + c)],
                  0.0f)
            << "sequence " << b << " padded row " << r;
      }
    }
  }
}

TEST(MaskedAttentionTest, FusedMatchesComposedPipelineBitExact) {
  // One unpadded sequence: the fused op must reproduce the composed
  // SliceCols/MatMul/Scale/Softmax/MatMul/ConcatCols pipeline bit for bit.
  Rng rng(22);
  const int L = 7;
  const int dim = 8;
  const int heads = 2;
  const int hd = dim / heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  Tensor q = Tensor::Randn({L, dim}, 1.0f, rng);
  Tensor k = Tensor::Randn({L, dim}, 1.0f, rng);
  Tensor v = Tensor::Randn({L, dim}, 1.0f, rng);

  Tensor fused = MaskedAttention(q, k, v, heads, scale, {L}, L);

  std::vector<Tensor> head_outs;
  for (int h = 0; h < heads; ++h) {
    Tensor qh = SliceCols(q, h * hd, hd);
    Tensor kh = SliceCols(k, h * hd, hd);
    Tensor vh = SliceCols(v, h * hd, hd);
    Tensor probs = Softmax(Scale(MatMul(qh, Transpose(kh)), scale));
    head_outs.push_back(MatMul(probs, vh));
  }
  Tensor composed = ConcatCols(head_outs);

  ASSERT_EQ(fused.numel(), composed.numel());
  for (size_t i = 0; i < composed.data().size(); ++i) {
    EXPECT_EQ(fused.data()[i], composed.data()[i]) << "element " << i;
  }
}

TEST(MaskedAttentionTest, SingleValidRowAttendsOnlyToItself) {
  // Fully-padded remainder with one valid row: softmax over one key is
  // exactly 1, so the output row equals that row of V.
  Rng rng(23);
  const int pad = 4;
  const int dim = 8;
  Tensor q = Tensor::Randn({pad, dim}, 1.0f, rng);
  Tensor k = Tensor::Randn({pad, dim}, 1.0f, rng);
  Tensor v = Tensor::Randn({pad, dim}, 1.0f, rng);
  Tensor o = MaskedAttention(q, k, v, /*num_heads=*/2,
                             1.0f / std::sqrt(4.0f), {1}, pad);
  for (int c = 0; c < dim; ++c) {
    EXPECT_EQ(o.data()[static_cast<size_t>(c)],
              v.data()[static_cast<size_t>(c)])
        << "col " << c;
  }
}

// ----- training-path checks --------------------------------------------

TEST(EncoderBatchTest, BatchedTrainingGradientsReachAllParameters) {
  Rng init(31);
  TransformerEncoder enc(SmallConfig(), init);
  std::vector<std::vector<int>> sequences = {TokenSeq(5), TokenSeq(9, 7)};
  // Segments included so the segment-embedding table is on the tape too.
  std::vector<std::vector<int>> segments = {{0, 0, 1, 1, 1},
                                            {0, 0, 0, 0, 1, 1, 1, 1, 1}};
  std::vector<EncoderBatchItem> items(sequences.size());
  for (size_t i = 0; i < sequences.size(); ++i) {
    items[i].token_ids = &sequences[i];
    items[i].segment_ids = &segments[i];
  }
  Rng rng(3);
  std::vector<Tensor> hs = enc.ForwardBatch(items, rng, /*training=*/true);
  Tensor loss = Add(Mean(Mul(hs[0], hs[0])), Mean(Mul(hs[1], hs[1])));
  loss.Backward();
  for (auto& p : enc.Parameters()) {
    float sum = 0;
    for (float g : p.tensor.grad()) sum += std::abs(g);
    EXPECT_GT(sum, 0.0f) << "no gradient reached " << p.name;
  }
}

TEST(EncoderBatchTest, CachedPositionSliceSeesInPlaceParamUpdates) {
  // The encoder caches position *ids*, not an embedding activation. If it
  // cached the activation, an in-place pos_emb update (what AdamW does
  // every step) would leave forwards reading stale values. Perturb the
  // table directly and require the forward to move.
  Rng init(32);
  TransformerEncoder enc(SmallConfig(), init);
  Rng r1(5);
  Tensor before = enc.Forward(TokenSeq(6), r1, false);

  bool found = false;
  for (auto& p : enc.Parameters()) {
    if (p.name.find("pos_emb") != std::string::npos) {
      // Index-varying perturbation: a constant shift would mostly vanish
      // into the embedding LayerNorm and prove nothing.
      size_t i = 0;
      for (float& x : p.tensor.data()) {
        x += 0.1f * static_cast<float>(i++ % 7);
      }
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no pos_emb parameter exposed";

  Rng r2(5);
  Tensor after = enc.Forward(TokenSeq(6), r2, false);
  float diff = 0;
  for (size_t i = 0; i < before.data().size(); ++i) {
    diff += std::abs(after.data()[i] - before.data()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(EncoderBatchTest, TrainStepThenForwardStaysConsistent) {
  // A full optimizer step between forwards: gradients from a batched
  // forward drive AdamW, and the next batched forward must still match
  // the next sequential forward bit for bit (no aliasing between the
  // cached ids and the updated embedding tables).
  Rng init(33);
  TransformerEncoder enc(SmallConfig(), init);
  AdamW optimizer(enc.Parameters(), {});
  std::vector<std::vector<int>> sequences = {TokenSeq(4), TokenSeq(11, 13)};
  std::vector<EncoderBatchItem> items(sequences.size());
  for (size_t i = 0; i < sequences.size(); ++i) {
    items[i].token_ids = &sequences[i];
  }
  Rng rng(9);
  optimizer.ZeroGrad();
  std::vector<Tensor> hs = enc.ForwardBatch(items, rng, /*training=*/true);
  Add(Mean(Mul(hs[0], hs[0])), Mean(Mul(hs[1], hs[1]))).Backward();
  optimizer.Step();

  ExpectBatchedMatchesSequential(enc, sequences);
}

// ----- concurrency (the serving drain's contract; runs under TSan) ------

TEST(EncoderBatchTest, ConcurrentBatchedForwardsAreDeterministic) {
  Rng init(41);
  TransformerEncoder enc(SmallConfig(), init);
  std::vector<std::vector<int>> sequences = {TokenSeq(5), TokenSeq(12, 9),
                                             TokenSeq(7, 19)};
  std::vector<EncoderBatchItem> items(sequences.size());
  for (size_t i = 0; i < sequences.size(); ++i) {
    items[i].token_ids = &sequences[i];
  }
  Rng base_rng(7);
  std::vector<Tensor> expected = enc.ForwardBatch(items, base_rng, false);

  constexpr int kThreads = 4;
  std::vector<std::vector<Tensor>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7);
      results[static_cast<size_t>(t)] = enc.ForwardBatch(items, rng, false);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[static_cast<size_t>(t)].size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      for (size_t j = 0; j < expected[i].data().size(); ++j) {
        EXPECT_EQ(results[static_cast<size_t>(t)][i].data()[j],
                  expected[i].data()[j]);
      }
    }
  }
}

}  // namespace
}  // namespace kglink::nn
