// Part-2 serialization tests (Eq. 10-11 + KGLink's label slot and KG
// prefixes): structure, budgets, chunking, masked/ground-truth alignment.
#include "core/serializer.h"

#include <gtest/gtest.h>

namespace kglink::core {
namespace {

// Builds a ProcessedTable by hand (no KG needed).
linker::ProcessedTable MakeProcessed(
    const std::vector<std::vector<std::string>>& cells,
    const std::vector<std::vector<std::string>>& candidate_types) {
  linker::ProcessedTable pt;
  pt.filtered = table::Table::FromStrings("t", cells);
  pt.columns.resize(static_cast<size_t>(pt.filtered.num_cols()));
  for (size_t c = 0; c < pt.columns.size(); ++c) {
    auto& info = pt.columns[c];
    info.is_numeric = pt.filtered.IsNumericColumn(static_cast<int>(c));
    if (info.is_numeric) {
      info.stats = pt.filtered.ColumnStats(static_cast<int>(c));
    } else if (c < candidate_types.size()) {
      info.candidate_type_labels = candidate_types[c];
      for (size_t i = 0; i < candidate_types[c].size(); ++i) {
        info.candidate_types.push_back({static_cast<int>(i), 1.0});
      }
    }
  }
  return pt;
}

nn::Vocabulary MakeVocab() {
  return nn::Vocabulary::Build(
      {"rust echo peter steele mia torv musician album human",
       "alpha beta gamma delta"},
      100000);
}

class SerializerTest : public ::testing::Test {
 protected:
  SerializerTest() : vocab_(MakeVocab()) {}
  nn::Vocabulary vocab_;
};

TEST_F(SerializerTest, OneClsPerColumnAndTrailingSep) {
  TableSerializer ser(&vocab_, {});
  auto pt = MakeProcessed({{"rust", "peter steele"}, {"echo", "mia torv"}},
                          {{}, {}});
  auto chunks = ser.Serialize(pt, LabelSlot::kMask, nullptr,
                              /*use_candidate_types=*/true);
  ASSERT_EQ(chunks.size(), 1u);
  const auto& chunk = chunks[0];
  ASSERT_EQ(chunk.columns.size(), 2u);
  for (const auto& sc : chunk.columns) {
    EXPECT_EQ(chunk.tokens[static_cast<size_t>(sc.cls_pos)],
              nn::Vocabulary::kCls);
  }
  EXPECT_EQ(chunk.tokens.back(), nn::Vocabulary::kSep);
  // Exactly two [CLS] tokens in the whole sequence (multi-column Eq. 11).
  int cls_count = 0;
  for (int tok : chunk.tokens) {
    if (tok == nn::Vocabulary::kCls) ++cls_count;
  }
  EXPECT_EQ(cls_count, 2);
}

TEST_F(SerializerTest, MaskSlotAtInferenceIsSingleMask) {
  TableSerializer ser(&vocab_, {});
  auto pt = MakeProcessed({{"rust"}}, {{}});
  auto chunks = ser.Serialize(pt, LabelSlot::kMask, nullptr, true);
  const auto& sc = chunks[0].columns[0];
  ASSERT_EQ(sc.label_positions.size(), 1u);
  EXPECT_EQ(chunks[0].tokens[static_cast<size_t>(sc.label_positions[0])],
            nn::Vocabulary::kMask);
}

TEST_F(SerializerTest, MaskedAndGroundTruthAlign) {
  TableSerializer ser(&vocab_, {});
  auto pt = MakeProcessed({{"rust", "peter steele"}}, {{}, {}});
  std::vector<std::string> labels = {"album", "musician"};
  auto msk = ser.Serialize(pt, LabelSlot::kMask, &labels, true);
  auto gt = ser.Serialize(pt, LabelSlot::kGroundTruth, &labels, true);
  ASSERT_EQ(msk.size(), 1u);
  ASSERT_EQ(gt.size(), 1u);
  EXPECT_EQ(msk[0].tokens.size(), gt[0].tokens.size());
  for (size_t c = 0; c < 2; ++c) {
    const auto& m = msk[0].columns[c];
    const auto& g = gt[0].columns[c];
    ASSERT_EQ(m.label_positions, g.label_positions);
    for (size_t i = 0; i < m.label_positions.size(); ++i) {
      int mpos = m.label_positions[i];
      EXPECT_EQ(msk[0].tokens[static_cast<size_t>(mpos)],
                nn::Vocabulary::kMask);
      // Ground-truth slot holds the label's token, not [MASK].
      EXPECT_NE(gt[0].tokens[static_cast<size_t>(mpos)],
                nn::Vocabulary::kMask);
    }
  }
  // Column 1's gt slot is the "musician" token.
  int pos = gt[0].columns[1].label_positions[0];
  EXPECT_EQ(gt[0].tokens[static_cast<size_t>(pos)], vocab_.Id("musician"));
}

TEST_F(SerializerTest, CandidateTypesAppearAfterLabelSlot) {
  TableSerializer ser(&vocab_, {});
  auto pt = MakeProcessed({{"rust"}}, {{"album", "musician"}});
  auto with = ser.Serialize(pt, LabelSlot::kMask, nullptr, true);
  auto without = ser.Serialize(pt, LabelSlot::kMask, nullptr, false);
  // The candidate-type tokens must be present only in the former.
  auto contains = [&](const SerializedTable& st, int id) {
    for (int tok : st.tokens) {
      if (tok == id) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(with[0], vocab_.Id("album")));
  EXPECT_TRUE(contains(with[0], vocab_.Id("musician")));
  EXPECT_FALSE(contains(without[0], vocab_.Id("album")));
}

TEST_F(SerializerTest, NumericColumnGetsStatsTokens) {
  TableSerializer ser(&vocab_, {});
  auto pt = MakeProcessed({{"10"}, {"20"}, {"30"}}, {});
  auto chunks = ser.Serialize(pt, LabelSlot::kMask, nullptr, true);
  // mean=20 var=66.7 median=20 -> bucket tokens <num_p1>, <num_p1>, <num_p1>
  int bucket = vocab_.Id(nn::Vocabulary::NumberToken(20.0));
  int count = 0;
  for (int tok : chunks[0].tokens) {
    if (tok == bucket) ++count;
  }
  EXPECT_GE(count, 2);  // mean + median at least
}

TEST_F(SerializerTest, WideTablesSplitIntoChunks) {
  SerializerConfig config;
  config.max_cols = 3;
  TableSerializer ser(&vocab_, config);
  std::vector<std::string> row(7, "alpha");
  auto pt = MakeProcessed({row}, std::vector<std::vector<std::string>>(7));
  auto chunks = ser.Serialize(pt, LabelSlot::kMask, nullptr, true);
  ASSERT_EQ(chunks.size(), 3u);  // 3 + 3 + 1 columns
  EXPECT_EQ(chunks[0].columns.size(), 3u);
  EXPECT_EQ(chunks[2].columns.size(), 1u);
  // Source columns cover 0..6 exactly once.
  std::vector<int> seen;
  for (const auto& chunk : chunks) {
    for (const auto& sc : chunk.columns) seen.push_back(sc.source_col);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST_F(SerializerTest, RespectsSequenceCap) {
  SerializerConfig config;
  config.max_seq_len = 48;
  TableSerializer ser(&vocab_, config);
  std::vector<std::vector<std::string>> cells;
  for (int r = 0; r < 50; ++r) {
    cells.push_back({"alpha beta gamma delta", "rust echo peter",
                     "mia torv musician", "album human alpha"});
  }
  auto pt = MakeProcessed(cells, std::vector<std::vector<std::string>>(4));
  auto chunks = ser.Serialize(pt, LabelSlot::kMask, nullptr, true);
  for (const auto& chunk : chunks) {
    EXPECT_LE(chunk.tokens.size(), 48u);
  }
}

TEST_F(SerializerTest, EncodeFeatureTruncates) {
  SerializerConfig config;
  config.max_feature_tokens = 5;
  TableSerializer ser(&vocab_, config);
  auto ids = ser.EncodeFeature(
      "rust echo peter steele mia torv musician album");
  EXPECT_EQ(ids.size(), 5u);
}

}  // namespace
}  // namespace kglink::core
