// Tests for the Sherlock-style feature baseline and corpus persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/sherlock.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "table/corpus_io.h"
#include "util/csv.h"

namespace kglink {
namespace {

TEST(SherlockFeaturesTest, DimensionAndDeterminism) {
  baselines::SherlockAnnotator sherlock(baselines::SherlockOptions{});
  table::Table t = table::Table::FromStrings(
      "t", {{"Alice Smith", "42"}, {"Bob Jones", "17"}});
  auto f1 = sherlock.ExtractFeatures(t, 0);
  auto f2 = sherlock.ExtractFeatures(t, 0);
  EXPECT_EQ(static_cast<int>(f1.size()), sherlock.feature_dim());
  EXPECT_EQ(f1, f2);
}

TEST(SherlockFeaturesTest, DiscriminativeStats) {
  baselines::SherlockAnnotator sherlock(baselines::SherlockOptions{});
  table::Table t = table::Table::FromStrings(
      "t", {{"Alice Smith", "1984", "x"},
            {"Bob Jones", "1990", "y"},
            {"Cara Flint", "2001", "z"}});
  auto person_col = sherlock.ExtractFeatures(t, 0);
  auto year_col = sherlock.ExtractFeatures(t, 1);
  // Feature 10 is the numeric-cell fraction, 17/18 person/year shapes.
  EXPECT_EQ(person_col[10], 0.0f);
  EXPECT_EQ(year_col[10], 1.0f);
  EXPECT_GT(person_col[17], 0.9f);  // person-like fraction
  EXPECT_EQ(year_col[17], 0.0f);
  EXPECT_GT(year_col[18], 0.9f);  // year-like fraction
}

TEST(SherlockTest, LearnsOnSmallCorpus) {
  data::WorldConfig wc;
  wc.scale = 0.25;
  data::World world = data::GenerateWorld(wc);
  table::Corpus corpus = data::GenerateSemTabCorpus(
      world, data::CorpusOptions::SemTabDefaults(36));
  Rng rng(9);
  table::SplitCorpus split = table::StratifiedSplit(corpus, 0.7, 0.1, rng);
  baselines::SherlockOptions o;
  o.epochs = 8;
  baselines::SherlockAnnotator sherlock(o);
  sherlock.Fit(split.train, split.valid);
  eval::Metrics m = sherlock.Evaluate(split.train);
  EXPECT_GT(m.accuracy, 2.0 / split.train.num_labels());
  auto pred = sherlock.PredictTable(split.test.tables[0].table);
  EXPECT_EQ(pred.size(), split.test.tables[0].column_labels.size());
}

TEST(CorpusIoTest, SaveLoadRoundTrip) {
  data::WorldConfig wc;
  wc.scale = 0.25;
  data::World world = data::GenerateWorld(wc);
  table::Corpus corpus = data::GenerateVizNetCorpus(
      world, data::CorpusOptions::VizNetDefaults(10));
  std::string dir =
      (std::filesystem::temp_directory_path() / "kglink_corpus_io").string();
  ASSERT_TRUE(table::SaveCorpus(corpus, dir).ok());
  auto loaded = table::LoadCorpus(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, corpus.name);
  EXPECT_EQ(loaded->label_names, corpus.label_names);
  ASSERT_EQ(loaded->tables.size(), corpus.tables.size());
  for (size_t i = 0; i < corpus.tables.size(); ++i) {
    const auto& a = corpus.tables[i];
    const auto& b = loaded->tables[i];
    EXPECT_EQ(a.column_labels, b.column_labels);
    ASSERT_EQ(a.table.num_rows(), b.table.num_rows());
    ASSERT_EQ(a.table.num_cols(), b.table.num_cols());
    for (int r = 0; r < a.table.num_rows(); ++r) {
      for (int c = 0; c < a.table.num_cols(); ++c) {
        EXPECT_EQ(a.table.at(r, c).text, b.table.at(r, c).text);
        EXPECT_EQ(a.table.at(r, c).kind, b.table.at(r, c).kind);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(CorpusIoTest, LoadRejectsMissingDirectory) {
  EXPECT_FALSE(table::LoadCorpus("/nonexistent/kglink").ok());
}

TEST(CorpusIoTest, LoadRejectsBadLabels) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "kglink_corpus_bad").string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteFile(dir + "/corpus.meta", "c\nlabel0\n").ok());
  ASSERT_TRUE(WriteFile(dir + "/t0.csv", "a,b\n").ok());
  ASSERT_TRUE(WriteFile(dir + "/tables.tsv", "t0.csv\t0,7\n").ok());
  EXPECT_FALSE(table::LoadCorpus(dir).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace kglink
