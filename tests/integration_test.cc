// Cross-module integration tests: determinism of the whole stack, odd
// table shapes flowing end-to-end, and failure-injection cases (empty
// cells, single columns, very wide tables, all-numeric tables).
#include <gtest/gtest.h>

#include "baselines/doduo.h"
#include "core/annotator.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "eval/metrics.h"
#include "search/search_engine.h"

namespace kglink {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::WorldConfig wc;
    wc.scale = 0.25;
    world_ = new data::World(data::GenerateWorld(wc));
    engine_ = new search::SearchEngine(
        search::IndexKnowledgeGraph(world_->kg));
    table::Corpus corpus = data::GenerateSemTabCorpus(
        *world_, data::CorpusOptions::SemTabDefaults(40));
    Rng rng(5);
    split_ = new table::SplitCorpus(
        table::StratifiedSplit(corpus, 0.7, 0.1, rng));
  }
  static void TearDownTestSuite() {
    delete split_;
    delete engine_;
    delete world_;
  }

  static core::KgLinkOptions FastOptions(uint64_t seed = 99) {
    core::KgLinkOptions o;
    o.epochs = 2;
    o.encoder.dim = 24;
    o.encoder.num_heads = 2;
    o.encoder.num_layers = 1;
    o.encoder.ffn_dim = 32;
    o.serializer.max_seq_len = 96;
    o.linker.top_k_rows = 8;
    o.seed = seed;
    return o;
  }

  static data::World* world_;
  static search::SearchEngine* engine_;
  static table::SplitCorpus* split_;
};
data::World* IntegrationTest::world_ = nullptr;
search::SearchEngine* IntegrationTest::engine_ = nullptr;
table::SplitCorpus* IntegrationTest::split_ = nullptr;

TEST_F(IntegrationTest, FullStackIsDeterministicGivenSeed) {
  std::vector<std::vector<int>> runs;
  for (int run = 0; run < 2; ++run) {
    core::KgLinkAnnotator annotator(&world_->kg, engine_, FastOptions(7));
    annotator.Fit(split_->train, split_->valid);
    std::vector<int> all;
    for (int i = 0; i < 3; ++i) {
      auto p = annotator.PredictTable(
          split_->test.tables[static_cast<size_t>(i)].table);
      all.insert(all.end(), p.begin(), p.end());
    }
    runs.push_back(std::move(all));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST_F(IntegrationTest, DifferentSeedsDifferentModels) {
  std::vector<double> accs;
  for (uint64_t seed : {11u, 12u}) {
    core::KgLinkAnnotator annotator(&world_->kg, engine_,
                                    FastOptions(seed));
    annotator.Fit(split_->train, split_->valid);
    accs.push_back(annotator.Evaluate(split_->test).accuracy);
  }
  // Not asserting inequality of accuracy (can tie); assert the epochs ran.
  EXPECT_EQ(accs.size(), 2u);
}

TEST_F(IntegrationTest, HandlesDegenerateTablesAtPredictTime) {
  core::KgLinkAnnotator annotator(&world_->kg, engine_, FastOptions());
  annotator.Fit(split_->train, split_->valid);

  // Single column, single row.
  table::Table tiny = table::Table::FromStrings("tiny", {{"Rust"}});
  EXPECT_EQ(annotator.PredictTable(tiny).size(), 1u);

  // Empty cells sprinkled in.
  table::Table holes = table::Table::FromStrings(
      "holes", {{"", "x"}, {"y", ""}, {"", ""}});
  EXPECT_EQ(annotator.PredictTable(holes).size(), 2u);

  // All-numeric table.
  table::Table nums = table::Table::FromStrings(
      "nums", {{"1", "2", "3"}, {"4", "5", "6"}});
  EXPECT_EQ(annotator.PredictTable(nums).size(), 3u);

  // Wider than max_cols: must split into chunks and still cover all
  // columns.
  std::vector<std::string> wide_row(12, "alpha");
  table::Table wide = table::Table::FromStrings(
      "wide", {wide_row, wide_row, wide_row});
  std::vector<int> pred = annotator.PredictTable(wide);
  EXPECT_EQ(pred.size(), 12u);
}

TEST_F(IntegrationTest, BaselineHandlesDegenerateTables) {
  baselines::PlmOptions o;
  o.encoder.dim = 16;
  o.encoder.num_heads = 2;
  o.encoder.num_layers = 1;
  o.encoder.ffn_dim = 16;
  o.max_seq_len = 64;
  o.epochs = 1;
  baselines::DoduoAnnotator doduo(o);
  doduo.Fit(split_->train, split_->valid);
  table::Table holes = table::Table::FromStrings(
      "holes", {{"", ""}, {"", ""}});
  EXPECT_EQ(doduo.PredictTable(holes).size(), 2u);
}

TEST_F(IntegrationTest, TrainingImprovesOverInitialization) {
  // One-epoch model vs four-epoch model on the same seed: more training
  // must not reduce train-split accuracy materially (sanity of the whole
  // optimization stack).
  double acc1, acc4;
  {
    core::KgLinkOptions o = FastOptions(21);
    o.epochs = 1;
    core::KgLinkAnnotator a(&world_->kg, engine_, o);
    a.Fit(split_->train, split_->valid);
    acc1 = a.Evaluate(split_->train).accuracy;
  }
  {
    core::KgLinkOptions o = FastOptions(21);
    o.epochs = 4;
    core::KgLinkAnnotator a(&world_->kg, engine_, o);
    a.Fit(split_->train, split_->valid);
    acc4 = a.Evaluate(split_->train).accuracy;
  }
  EXPECT_GE(acc4 + 0.05, acc1);
}

TEST_F(IntegrationTest, KgPersistenceRoundTripsThroughPipeline) {
  // Save the world KG, reload it, rebuild the index: the Part-1 pipeline
  // must produce identical candidate types.
  std::string path = "/tmp/kglink_integration_kg.tsv";
  ASSERT_TRUE(world_->kg.SaveToFile(path).ok());
  auto loaded = kg::KnowledgeGraph::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  search::SearchEngine engine2 = search::IndexKnowledgeGraph(*loaded);

  linker::KgPipeline p1(&world_->kg, engine_, {});
  linker::KgPipeline p2(&*loaded, &engine2, {});
  const table::Table& t = split_->test.tables[0].table;
  linker::ProcessedTable a = p1.Process(t);
  linker::ProcessedTable b = p2.Process(t);
  ASSERT_EQ(a.columns.size(), b.columns.size());
  for (size_t c = 0; c < a.columns.size(); ++c) {
    EXPECT_EQ(a.columns[c].candidate_type_labels,
              b.columns[c].candidate_type_labels);
    EXPECT_EQ(a.columns[c].feature_sequence, b.columns[c].feature_sequence);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kglink
