// Tests for Status/StatusOr, Rng determinism & distributions, string
// helpers, and the CSV reader/writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace kglink {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

StatusOr<int> HalfOf(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UsesMacros(int v, int* out) {
  KGLINK_ASSIGN_OR_RETURN(int half, HalfOf(v));
  KGLINK_RETURN_IF_ERROR(Status::Ok());
  *out = half;
  return Status::Ok();
}

TEST(StatusTest, StatusOrAndMacros) {
  EXPECT_TRUE(HalfOf(4).ok());
  EXPECT_EQ(HalfOf(4).value(), 2);
  EXPECT_FALSE(HalfOf(3).ok());
  int out = 0;
  EXPECT_TRUE(UsesMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UsesMacros(9, &out).code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  double sum = 0, sq = 0;
  int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(11);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWordsLowercasesAndSegments) {
  auto words = SplitWords("LeBron James-Smith (2020)");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "lebron");
  EXPECT_EQ(words[1], "james");
  EXPECT_EQ(words[2], "smith");
  EXPECT_EQ(words[3], "2020");
}

TEST(StringUtilTest, SplitWordsKeepsUtf8Sequences) {
  // Regression: bytes >= 0x80 used to be treated as separators, so any
  // accented or CJK label tokenized to nothing (and its cells became
  // silently unlinkable). Multi-byte sequences are word characters now,
  // passed through uncased.
  auto words = SplitWords("Köln 東京 crème brûlée");
  ASSERT_EQ(words.size(), 4u);
  // ASCII letters still lowercase; the multi-byte ö passes through as-is.
  EXPECT_EQ(words[0], "köln");
  EXPECT_EQ(words[1], "東京");
  EXPECT_EQ(words[2], "crème");
  EXPECT_EQ(words[3], "brûlée");
}

TEST(StringUtilTest, SplitWordsMixedAsciiAndUtf8Boundaries) {
  // ASCII separators still split; UTF-8 runs merge with adjacent ASCII
  // word characters exactly as accented words require.
  auto words = SplitWords("Zürich-West (привет) 東京2020");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "zürich");
  EXPECT_EQ(words[1], "west");
  EXPECT_EQ(words[2], "привет");
  EXPECT_EQ(words[3], "東京2020");
}

TEST(StringUtilTest, ForEachWordMatchesSplitWordsAndStopsEarly) {
  const std::string_view text = "Köln, 東京; alpha BETA";
  auto expected = SplitWords(text);
  std::vector<std::string> streamed;
  std::string scratch;
  ForEachWord(text, scratch, [&](const std::string& w) {
    streamed.push_back(w);
    return true;
  });
  EXPECT_EQ(streamed, expected);
  // Early stop: the callback's false return ends the walk.
  int seen = 0;
  ForEachWord(text, scratch, [&](const std::string&) {
    return ++seen < 2;
  });
  EXPECT_EQ(seen, 2);
}

TEST(StringUtilTest, LooksLikeNumber) {
  EXPECT_TRUE(LooksLikeNumber("42"));
  EXPECT_TRUE(LooksLikeNumber("-3.14"));
  EXPECT_TRUE(LooksLikeNumber("1,234,567"));
  EXPECT_TRUE(LooksLikeNumber("12%"));
  EXPECT_FALSE(LooksLikeNumber("abc"));
  EXPECT_FALSE(LooksLikeNumber("12a"));
  EXPECT_FALSE(LooksLikeNumber(""));
  EXPECT_FALSE(LooksLikeNumber("-"));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble(" 1,234.5 ", &v));
  EXPECT_DOUBLE_EQ(v, 1234.5);
  EXPECT_FALSE(ParseDouble("12x", &v));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(CsvTest, RoundTripWithQuoting) {
  std::vector<std::vector<std::string>> rows = {
      {"plain", "with,comma", "with\"quote"},
      {"multi\nline", "", "end"},
  };
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvTest, ParsesCrlf) {
  auto parsed = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[1][1], "d");
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("\"oops").ok());
}

TEST(CsvTest, FileRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "kglink_csv_test.csv")
          .string();
  ASSERT_TRUE(WriteFile(path, "x,y\n1,2\n").ok());
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[1][0], "1");
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsvFile(path).ok());
}

}  // namespace
}  // namespace kglink
