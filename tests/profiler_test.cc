// Sampling profiler + heap attribution tests: exporter formats from
// synthetic samples, live sampling against threads holding known frame
// stacks, start/stop lifecycle, and (when compiled in) deterministic heap
// call-site accounting. The concurrent push/pop-vs-sampler case doubles
// as the TSan target for the profiler's lock-free stack protocol.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/heap_profiler.h"
#include "obs/json_util.h"

namespace kglink::obs {
namespace {

// ----- pure exporters ---------------------------------------------------

std::vector<StackSample> SyntheticSamples() {
  // Thread 0: main -> work (3), main (2). Thread 1: main -> work (5).
  std::vector<StackSample> samples;
  samples.push_back({0, {"main", "work"}, 3});
  samples.push_back({0, {"main"}, 2});
  samples.push_back({1, {"main", "work"}, 5});
  return samples;
}

TEST(CollapsedExportTest, MergesThreadsAndSortsLines) {
  std::string text = CollapsedFromSamples(SyntheticSamples());
  // Cross-thread merge: main;work appears once with 3+5 = 8.
  EXPECT_EQ(text, "main 2\nmain;work 8\n");
}

TEST(CollapsedExportTest, EmptyInputYieldsEmptyString) {
  EXPECT_EQ(CollapsedFromSamples({}), "");
}

TEST(SpeedscopeExportTest, EmitsValidJsonWithPerThreadProfiles) {
  std::string json = SpeedscopeFromSamples(SyntheticSamples(), 1000.0);
  ASSERT_TRUE(IsValidJson(json)) << json;
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* frames = doc->Find("shared");
  ASSERT_NE(frames, nullptr);
  frames = frames->Find("frames");
  ASSERT_NE(frames, nullptr);
  // Frames dedupe by name across threads.
  std::set<std::string> names;
  for (const JsonValue& f : frames->array) {
    names.insert(f.StringOr("name", ""));
  }
  EXPECT_EQ(names, (std::set<std::string>{"main", "work"}));

  const JsonValue* profiles = doc->Find("profiles");
  ASSERT_NE(profiles, nullptr);
  ASSERT_EQ(profiles->array.size(), 2u);  // one per thread
  // Per-profile weight sums: thread 0 = (3+2) * 1000us, thread 1 = 5000us.
  double weights[2] = {0, 0};
  for (size_t p = 0; p < 2; ++p) {
    const JsonValue* w = profiles->array[p].Find("weights");
    ASSERT_NE(w, nullptr);
    for (const JsonValue& v : w->array) weights[p] += v.number;
    EXPECT_EQ(profiles->array[p].NumberOr("endValue", -1), weights[p]);
  }
  EXPECT_DOUBLE_EQ(weights[0], 5000.0);
  EXPECT_DOUBLE_EQ(weights[1], 5000.0);
}

TEST(SpeedscopeExportTest, EmptyProfileIsStillValidJson) {
  std::string json = SpeedscopeFromSamples({}, 1000.0);
  EXPECT_TRUE(IsValidJson(json)) << json;
}

// ----- frame-name interning --------------------------------------------

TEST(InternTest, SameContentSamePointer) {
  const char* a = InternFrameName("enc.layer0");
  const char* b = InternFrameName(std::string("enc.layer") + "0");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "enc.layer0");
  EXPECT_NE(a, InternFrameName("enc.layer1"));
}

#if !defined(KGLINK_PROFILER_ENABLED)

// Compiled out: frames are empty types and nothing ever samples.
static_assert(std::is_empty_v<ProfileFrame>,
              "ProfileFrame must be zero-size when the profiler is "
              "compiled out");

TEST(ProfilerDisabledTest, StartRefusesAndStatusSaysSo) {
  EXPECT_FALSE(kProfilerCompiledIn);
  Profiler& p = Profiler::Global();
  EXPECT_FALSE(p.Start({}).ok());
  EXPECT_FALSE(p.running());
  EXPECT_EQ(p.samples(), 0);
  std::string status = p.StatusJson();
  EXPECT_TRUE(IsValidJson(status)) << status;
  auto doc = ParseJson(status);
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(doc->BoolOr("compiled_in", true));
}

#else  // KGLINK_PROFILER_ENABLED

// ----- live sampling ----------------------------------------------------

// Holds `frames` (bottom→top) on this thread until `stop` fires.
void HoldFrames(const std::vector<const char*>& frames,
                std::atomic<bool>& stop) {
  if (frames.empty()) {
    while (!stop.load()) std::this_thread::yield();
    return;
  }
  KGLINK_PROFILE_FRAME(frames[0]);
  HoldFrames({frames.begin() + 1, frames.end()}, stop);
}

// Sums the counts of merged samples whose stack starts with `prefix`.
uint64_t InclusiveCount(const std::vector<StackSample>& samples,
                        const std::vector<const char*>& prefix) {
  uint64_t total = 0;
  for (const StackSample& s : samples) {
    if (s.frames.size() < prefix.size()) continue;
    bool match = true;
    for (size_t i = 0; i < prefix.size(); ++i) {
      if (std::strcmp(s.frames[i], prefix[i]) != 0) match = false;
    }
    if (match) total += s.count;
  }
  return total;
}

TEST(ProfilerLiveTest, SamplesThreadsAndRespectsFrameNesting) {
  Profiler& p = Profiler::Global();
  ProfilerOptions opts;
  opts.hz = 4000;
  ASSERT_TRUE(p.Start(opts).ok());
  EXPECT_TRUE(p.running());
  EXPECT_FALSE(p.Start(opts).ok()) << "Start while running must refuse";

  std::atomic<bool> stop{false};
  std::thread t1([&] { HoldFrames({"root", "leaf_a"}, stop); });
  std::thread t2([&] { HoldFrames({"root", "leaf_b"}, stop); });
  // Poll until both stacks were observed (bounded; 4 kHz makes this fast).
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(10);
  std::vector<StackSample> merged;
  while (std::chrono::steady_clock::now() < deadline) {
    merged = p.MergedSamples();
    if (InclusiveCount(merged, {"root", "leaf_a"}) > 0 &&
        InclusiveCount(merged, {"root", "leaf_b"}) > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  t1.join();
  t2.join();
  p.Stop();
  EXPECT_FALSE(p.running());

  merged = p.MergedSamples();
  uint64_t root = InclusiveCount(merged, {"root"});
  uint64_t leaf_a = InclusiveCount(merged, {"root", "leaf_a"});
  uint64_t leaf_b = InclusiveCount(merged, {"root", "leaf_b"});
  EXPECT_GT(leaf_a, 0u);
  EXPECT_GT(leaf_b, 0u);
  // Children never exceed their parent's inclusive count.
  EXPECT_LE(leaf_a + leaf_b, root);
  EXPECT_GT(p.ticks(), 0);
  EXPECT_GE(p.samples(), static_cast<int64_t>(leaf_a + leaf_b));

  // Cross-thread merge in the collapsed export: both leaves under root.
  std::string collapsed = p.CollapsedStacks();
  EXPECT_NE(collapsed.find("root;leaf_a "), std::string::npos) << collapsed;
  EXPECT_NE(collapsed.find("root;leaf_b "), std::string::npos) << collapsed;

  std::string speedscope = p.SpeedscopeJson();
  EXPECT_TRUE(IsValidJson(speedscope));
  EXPECT_NE(p.SummaryText(), "");
}

TEST(ProfilerLiveTest, RestartClearsPreviousSamples) {
  Profiler& p = Profiler::Global();
  ASSERT_TRUE(p.Start({.hz = 2000}).ok());
  {
    KGLINK_PROFILE_FRAME("restart_marker");
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (p.samples() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  p.Stop();
  ASSERT_GT(p.samples(), 0);

  // Restart: counters and the ring reset.
  ASSERT_TRUE(p.Start({.hz = 2000}).ok());
  p.Stop();
  EXPECT_EQ(
      InclusiveCount(p.MergedSamples(), {"restart_marker"}), 0u);
  p.Stop();  // idempotent
}

TEST(ProfilerLiveTest, StatusJsonIsValid) {
  Profiler& p = Profiler::Global();
  std::string status = p.StatusJson();
  ASSERT_TRUE(IsValidJson(status)) << status;
  auto doc = ParseJson(status);
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->BoolOr("compiled_in", false));
  const JsonValue* process = doc->Find("process");
  ASSERT_NE(process, nullptr);
#if defined(__linux__)
  EXPECT_GT(process->NumberOr("rss_bytes", -1), 0);
#endif
  ASSERT_NE(doc->Find("heap"), nullptr);
}

// TSan target: mutator threads churning push/pop while the sampler reads
// their stacks. Exercises the release/acquire depth protocol; any missing
// ordering shows up as a data-race report under scripts/check.sh --tsan.
TEST(ProfilerConcurrencyTest, PushPopRacesSamplerCleanly) {
  Profiler& p = Profiler::Global();
  ASSERT_TRUE(p.Start({.hz = 10000}).ok());
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        KGLINK_PROFILE_FRAME("churn_outer");
        for (int i = 0; i < 64; ++i) {
          KGLINK_PROFILE_FRAME("churn_inner");
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& t : threads) t.join();
  p.Stop();
  // Every observed stack must be a valid prefix of the real one.
  for (const StackSample& s : p.MergedSamples()) {
    if (s.frames.empty() ||
        std::strcmp(s.frames[0], "churn_outer") != 0) {
      continue;  // another test's thread
    }
    ASSERT_LE(s.frames.size(), 2u);
    if (s.frames.size() == 2) {
      EXPECT_STREQ(s.frames[1], "churn_inner");
    }
  }
}

TEST(ProfilerLiveTest, DeepStacksTruncateAtMaxDepth) {
  Profiler& p = Profiler::Global();
  ASSERT_TRUE(p.Start({.hz = 100}).ok());
  // Deeper than kMaxProfileDepth: the overflowing frames are dropped, the
  // scopes still run, and pops stay balanced (no crash, no underflow).
  std::vector<const char*> names;
  for (uint32_t i = 0; i < kMaxProfileDepth + 8; ++i) {
    names.push_back(InternFrameName("deep" + std::to_string(i)));
  }
  std::atomic<bool> stop{true};  // no need to hold; just push/pop once
  HoldFrames(names, stop);
  const char* buf[kMaxProfileDepth];
  EXPECT_EQ(profiler_internal::CaptureOwnStack(buf), 0u);
  p.Stop();
}

#endif  // KGLINK_PROFILER_ENABLED

// ----- heap attribution -------------------------------------------------

TEST(HeapProfilerTest, StatusReportsCompiledState) {
  std::string status = HeapProfiler::Global().StatusJson();
  ASSERT_TRUE(IsValidJson(status)) << status;
  auto doc = ParseJson(status);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->BoolOr("compiled_in", !kHeapProfilerCompiledIn),
            kHeapProfilerCompiledIn);
}

#if defined(KGLINK_HEAP_PROFILER_ENABLED)

TEST(HeapProfilerTest, DeterministicCountsWithExactSampling) {
  // Frames only push while the profiler is armed, so call-site
  // attribution needs a running sampler (the CLI pairs --heap-profile
  // with --profile for the same reason).
  if (!kProfilerCompiledIn) {
    GTEST_SKIP() << "needs KGLINK_ENABLE_PROFILER=ON for frame stacks";
  }
  ASSERT_TRUE(Profiler::Global().Start({.hz = 10}).ok());
  HeapProfiler& hp = HeapProfiler::Global();
  HeapProfilerOptions opts;
  opts.sample_every = 1;  // exact per-site accounting
  hp.Enable(opts);
  hp.FlushCurrentThread();
  hp.ResetForTest();

  constexpr int kAllocs = 100;
  constexpr size_t kBytes = 1024;
  {
    KGLINK_PROFILE_FRAME("heap_test_site");
    std::vector<char*> blocks;
    blocks.reserve(kAllocs);
    for (int i = 0; i < kAllocs; ++i) blocks.push_back(new char[kBytes]);
    for (char* b : blocks) delete[] b;
  }
  hp.FlushCurrentThread();
  hp.Disable();
  Profiler::Global().Stop();

  HeapTotals totals = hp.totals();
  EXPECT_GE(totals.alloc_count, static_cast<uint64_t>(kAllocs));
  EXPECT_GE(totals.alloc_bytes, static_cast<uint64_t>(kAllocs) * kBytes);
  EXPECT_GE(totals.free_count, static_cast<uint64_t>(kAllocs));

  bool found = false;
  for (const HeapSite& site : hp.Sites()) {
    if (site.frames.empty()) continue;
    if (std::strcmp(site.frames.back(), "heap_test_site") != 0) continue;
    found = true;
    EXPECT_GE(site.count, static_cast<uint64_t>(kAllocs));
    EXPECT_GE(site.bytes, static_cast<uint64_t>(kAllocs) * kBytes);
  }
  EXPECT_TRUE(found) << "allocation site not attributed";
  EXPECT_NE(hp.CollapsedAllocBytes().find("heap_test_site"),
            std::string::npos);
}

#else

TEST(HeapProfilerTest, CompiledOutEnableIsNoop) {
  HeapProfiler& hp = HeapProfiler::Global();
  hp.Enable({});
  EXPECT_FALSE(hp.enabled());
  EXPECT_EQ(hp.totals().alloc_count, 0u);
  EXPECT_EQ(hp.Sites().size(), 0u);
}

#endif  // KGLINK_HEAP_PROFILER_ENABLED

}  // namespace
}  // namespace kglink::obs
