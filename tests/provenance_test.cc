// Decision-provenance tests: recorder arm/buffer semantics, gold-label
// context joins, and the end-to-end contract — an armed recorder plus a
// real Fit/Evaluate run yields one JSON-parseable record per table and
// column, carrying the BM25 hits, filter decisions, candidate types,
// degraded flag and final logits that --explain surfaces. The degraded
// path is exercised by forcing every BM25 retrieval to fail.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/annotator.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "eval/explain_report.h"
#include "obs/json_util.h"
#include "obs/provenance.h"
#include "robust/fault_injector.h"
#include "search/search_engine.h"
#include "table/table.h"

namespace kglink {
namespace {

using obs::ProvenanceRecorder;

TEST(ProvenanceRecorderTest, GoldContextJoinsByTableAndColumn) {
  ProvenanceRecorder rec;
  EXPECT_EQ(rec.GoldFor("t1", 0), obs::kProvenanceNoGold);
  rec.SetTableGold("t1", {2, obs::kProvenanceNoGold, 0},
                   {"city", "film", "person"});
  EXPECT_EQ(rec.GoldFor("t1", 0), 2);
  EXPECT_EQ(rec.GoldFor("t1", 1), obs::kProvenanceNoGold);
  EXPECT_EQ(rec.GoldFor("t1", 2), 0);
  EXPECT_EQ(rec.GoldFor("t1", 3), obs::kProvenanceNoGold);  // out of range
  EXPECT_EQ(rec.GoldFor("other", 0), obs::kProvenanceNoGold);
  EXPECT_EQ(rec.GoldLabelName(2), "person");
  EXPECT_EQ(rec.GoldLabelName(9), "");
  rec.ClearTableGold();
  EXPECT_EQ(rec.GoldFor("t1", 0), obs::kProvenanceNoGold);
}

#if defined(KGLINK_PROVENANCE_ENABLED)

TEST(ProvenanceRecorderTest, BuffersOnlyWhileArmed) {
  ProvenanceRecorder rec;
  rec.Emit("{\"dropped\":true}");  // disarmed -> ignored
  EXPECT_EQ(rec.record_count(), 0u);
  rec.Start();
  EXPECT_TRUE(rec.enabled());
  rec.Emit("{\"a\":1}");
  rec.Emit("{\"b\":2}");
  rec.Stop();
  rec.Emit("{\"dropped\":true}");
  EXPECT_EQ(rec.record_count(), 2u);
  EXPECT_EQ(rec.Jsonl(), "{\"a\":1}\n{\"b\":2}\n");
  // Start() clears the previous capture.
  rec.Start();
  EXPECT_EQ(rec.record_count(), 0u);
  rec.Stop();
}

// Shared tiny world/model fixture: training is the expensive part, so the
// suite fits one annotator and reuses it across provenance runs.
class ProvenanceE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::WorldConfig wc;
    wc.scale = 0.25;
    world_ = new data::World(data::GenerateWorld(wc));
    engine_ = new search::SearchEngine(
        search::IndexKnowledgeGraph(world_->kg));
    table::Corpus corpus = data::GenerateSemTabCorpus(
        *world_, data::CorpusOptions::SemTabDefaults(40));
    Rng rng(5);
    split_ = new table::SplitCorpus(
        table::StratifiedSplit(corpus, 0.7, 0.1, rng));
    core::KgLinkOptions o;
    o.epochs = 4;
    o.encoder.dim = 24;
    o.encoder.num_heads = 2;
    o.encoder.num_layers = 1;
    o.encoder.ffn_dim = 32;
    o.serializer.max_seq_len = 96;
    o.linker.top_k_rows = 8;
    o.seed = 99;
    annotator_ = new core::KgLinkAnnotator(&world_->kg, engine_, o);
    annotator_->Fit(split_->train, split_->valid);
  }
  static void TearDownTestSuite() {
    delete annotator_;
    delete split_;
    delete engine_;
    delete world_;
  }

  void TearDown() override {
    robust::FaultInjector::Global().Disable();
    ProvenanceRecorder::Global().Stop();
  }

  static data::World* world_;
  static search::SearchEngine* engine_;
  static table::SplitCorpus* split_;
  static core::KgLinkAnnotator* annotator_;
};
data::World* ProvenanceE2eTest::world_ = nullptr;
search::SearchEngine* ProvenanceE2eTest::engine_ = nullptr;
table::SplitCorpus* ProvenanceE2eTest::split_ = nullptr;
core::KgLinkAnnotator* ProvenanceE2eTest::annotator_ = nullptr;

TEST_F(ProvenanceE2eTest, EvaluateEmitsParseableRecordsWithGold) {
  ProvenanceRecorder& rec = ProvenanceRecorder::Global();
  rec.Start();
  annotator_->Evaluate(split_->test);
  rec.Stop();

  std::vector<std::string> records = rec.Records();
  ASSERT_FALSE(records.empty());

  size_t tables = 0, columns = 0, with_gold = 0, with_hits = 0;
  std::set<std::string> evidence_seen;
  for (const std::string& record : records) {
    ASSERT_TRUE(obs::IsValidJson(record)) << record;
    std::optional<obs::JsonValue> v = obs::ParseJson(record);
    ASSERT_TRUE(v.has_value());
    std::string kind = v->StringOr("kind", "");
    if (kind == "table") {
      ++tables;
      EXPECT_NE(v->Find("kept_rows"), nullptr);
      EXPECT_FALSE(v->BoolOr("degraded", true));
      continue;
    }
    ASSERT_EQ(kind, "column") << record;
    ++columns;
    evidence_seen.insert(v->StringOr("kg_evidence", ""));

    // The decision evidence --explain promises: per-cell BM25 hits with
    // kept/dropped filter outcomes, candidate types, and final logits.
    const obs::JsonValue* cells = v->Find("cells");
    ASSERT_NE(cells, nullptr) << record;
    for (const obs::JsonValue& cell : cells->array) {
      const obs::JsonValue* retrieved = cell.Find("retrieved");
      ASSERT_NE(retrieved, nullptr);
      if (!retrieved->array.empty()) {
        ++with_hits;
        const obs::JsonValue& hit = retrieved->array[0];
        EXPECT_NE(hit.Find("entity"), nullptr);
        EXPECT_NE(hit.Find("bm25"), nullptr);
      }
      EXPECT_NE(cell.Find("kept"), nullptr);
      EXPECT_NE(cell.Find("dropped"), nullptr);
    }
    ASSERT_NE(v->Find("candidate_types"), nullptr) << record;
    const obs::JsonValue* logits = v->Find("logits");
    ASSERT_NE(logits, nullptr);
    EXPECT_EQ(logits->array.size(),
              static_cast<size_t>(split_->test.num_labels()));
    EXPECT_NE(v->Find("pred"), nullptr);
    if (v->Find("gold") != nullptr) {
      ++with_gold;
      EXPECT_FALSE(v->StringOr("gold_label", "").empty()) << record;
      EXPECT_NE(v->Find("correct"), nullptr);
    }
  }
  EXPECT_EQ(tables, split_->test.tables.size());
  EXPECT_GT(columns, 0u);
  EXPECT_GT(with_gold, 0u);
  EXPECT_GT(with_hits, 0u) << "no cell retrieved any BM25 hit";
  EXPECT_TRUE(evidence_seen.count("linked"))
      << "SemTab-like columns should carry KG evidence";

  // The aggregate report derives from the same JSONL without skips.
  eval::ExplainReport report = eval::BuildExplainReport(rec.Jsonl());
  EXPECT_EQ(report.tables, static_cast<int64_t>(tables));
  EXPECT_EQ(report.columns, static_cast<int64_t>(columns));
  EXPECT_EQ(report.skipped_lines, 0);
  EXPECT_EQ(report.overall.total, static_cast<int64_t>(with_gold));
  EXPECT_EQ(report.degraded.total, 0);
}

TEST_F(ProvenanceE2eTest, ForcedSearchFailureMarksRecordsDegraded) {
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0", 42)
                  .ok());
  ProvenanceRecorder& rec = ProvenanceRecorder::Global();
  rec.Start();
  annotator_->PredictTable(split_->test.tables[0].table);
  rec.Stop();
  robust::FaultInjector::Global().Disable();

  size_t degraded_columns = 0;
  for (const std::string& record : rec.Records()) {
    std::optional<obs::JsonValue> v = obs::ParseJson(record);
    ASSERT_TRUE(v.has_value()) << record;
    if (v->StringOr("kind", "") == "table") {
      EXPECT_TRUE(v->BoolOr("degraded", false));
      EXPECT_FALSE(v->StringOr("degrade_reason", "").empty()) << record;
      continue;
    }
    EXPECT_EQ(v->StringOr("kg_evidence", ""), "degraded") << record;
    ++degraded_columns;
  }
  EXPECT_GT(degraded_columns, 0u);
}

TEST_F(ProvenanceE2eTest, HostileCellTextStaysParseable) {
  // A table whose cells carry quotes, control bytes and invalid UTF-8 must
  // still produce valid JSON records that round-trip the text.
  std::string hostile = "qu\"ote\\back\x01\xff\xc3";
  auto t = table::Table::TryFromStrings(
      "hostile.csv",
      {{"h1", "h2"}, {hostile, "plain"}, {"Another cell", "x"}});
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  ProvenanceRecorder& rec = ProvenanceRecorder::Global();
  rec.Start();
  annotator_->PredictTable(*t);
  rec.Stop();

  bool saw_hostile = false;
  for (const std::string& record : rec.Records()) {
    ASSERT_TRUE(obs::IsValidJson(record)) << record;
    std::optional<obs::JsonValue> v = obs::ParseJson(record);
    ASSERT_TRUE(v.has_value());
    if (v->StringOr("kind", "") != "column") continue;
    const obs::JsonValue* cells = v->Find("cells");
    ASSERT_NE(cells, nullptr);
    for (const obs::JsonValue& cell : cells->array) {
      std::string text = cell.StringOr("text", "");
      if (text.find("qu\"ote") != std::string::npos) {
        saw_hostile = true;
        // Invalid bytes were sanitized to U+FFFD; the valid prefix and the
        // control character survive the round trip.
        EXPECT_NE(text.find('\x01'), std::string::npos);
        EXPECT_NE(text.find("\xef\xbf\xbd"), std::string::npos);
      }
    }
  }
  EXPECT_TRUE(saw_hostile);
}

TEST_F(ProvenanceE2eTest, DisarmedRecorderAddsNoRecords) {
  ProvenanceRecorder& rec = ProvenanceRecorder::Global();
  rec.Start();
  rec.Stop();  // armed then immediately disarmed: buffer is empty
  annotator_->PredictTable(split_->test.tables[0].table);
  EXPECT_EQ(rec.record_count(), 0u);
}

#else  // !KGLINK_PROVENANCE_ENABLED

TEST(ProvenanceDisabledTest, StartCannotArm) {
  ProvenanceRecorder rec;
  rec.Start();
  EXPECT_FALSE(rec.enabled());
  rec.Emit("{\"a\":1}");
  EXPECT_EQ(rec.record_count(), 0u);
}

#endif  // KGLINK_PROVENANCE_ENABLED

}  // namespace
}  // namespace kglink
