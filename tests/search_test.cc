// BM25 search-engine tests: exact Eq. 1/2 scoring, ranking behaviour, and
// BM25 properties (IDF monotonicity, term-frequency saturation, length
// normalization).
#include "search/search_engine.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kglink::search {
namespace {

SearchEngine ThreeDocs() {
  SearchEngine e;
  e.AddDocument(0, "LeBron James");
  e.AddDocument(1, "James Harden");
  e.AddDocument(2, "Rust album");
  e.Finalize();
  return e;
}

TEST(SearchTest, IdfMatchesEq2) {
  SearchEngine e = ThreeDocs();
  // "james" appears in 2 of 3 docs.
  double expected = std::log((3 - 2 + 0.5) / (2 + 0.5) + 1.0);
  EXPECT_NEAR(e.Idf("james"), expected, 1e-12);
  // unseen term: n = 0.
  double unseen = std::log((3 - 0 + 0.5) / 0.5 + 1.0);
  EXPECT_NEAR(e.Idf("zzz"), unseen, 1e-12);
}

// Pins the documented unseen-term contract: Idf() is NOT 0 for terms
// absent from the index — with n(w)=0, Eq. 2 yields the maximum IDF
// ln((N + 0.5)/0.5 + 1) — yet unseen-only queries still match nothing.
TEST(SearchTest, UnseenTermIdfIsMaximalNotZero) {
  SearchEngine e = ThreeDocs();  // N = 3
  double max_idf = std::log((3 + 0.5) / 0.5 + 1.0);  // = ln(8)
  EXPECT_NEAR(e.Idf("unseen_term"), max_idf, 1e-12);
  EXPECT_NEAR(e.Idf("unseen_term"), std::log(8.0), 1e-12);
  EXPECT_GT(e.Idf("unseen_term"), 0.0);
  // Maximal: no indexed term can have a higher IDF.
  for (const char* term : {"lebron", "james", "harden", "rust", "album"}) {
    EXPECT_LT(e.Idf(term), max_idf);
  }
  // Unseen terms contribute nothing to retrieval or scoring.
  EXPECT_TRUE(e.TopK("unseen_term", 3).empty());
  EXPECT_EQ(e.Score("unseen_term", 0), 0.0);
}

TEST(SearchTest, ScoreMatchesHandComputedBm25) {
  Bm25Params params;  // k1=1.2, b=0.75
  SearchEngine e(params);
  e.AddDocument(10, "alpha beta");        // len 2
  e.AddDocument(11, "alpha alpha gamma"); // len 3
  e.AddDocument(12, "delta");             // len 1
  e.Finalize();
  double avg = 2.0;  // (2+3+1)/3
  EXPECT_DOUBLE_EQ(e.average_doc_length(), avg);
  // Score of doc 11 for query "alpha": f=2, len=3.
  double idf = std::log((3 - 2 + 0.5) / (2 + 0.5) + 1.0);
  double tf = 2.0 * (1.2 + 1.0) /
              (2.0 + 1.2 * (1 - 0.75 + 0.75 * 3.0 / avg));
  EXPECT_NEAR(e.Score("alpha", 11), idf * tf, 1e-12);
  // No overlap -> 0.
  EXPECT_EQ(e.Score("alpha", 12), 0.0);
}

TEST(SearchTest, TopKRanksExactMatchFirst) {
  SearchEngine e = ThreeDocs();
  auto results = e.TopK("LeBron James", 3);
  ASSERT_GE(results.size(), 2u);
  EXPECT_EQ(results[0].doc_id, 0);  // both terms match
  EXPECT_EQ(results[1].doc_id, 1);  // only "james"
  EXPECT_GT(results[0].score, results[1].score);
}

TEST(SearchTest, TopKOmitsZeroOverlap) {
  SearchEngine e = ThreeDocs();
  auto results = e.TopK("LeBron", 10);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc_id, 0);
  EXPECT_TRUE(e.TopK("zzz unknown", 10).empty());
}

TEST(SearchTest, TopKRespectsK) {
  SearchEngine e;
  for (int i = 0; i < 20; ++i) {
    e.AddDocument(i, "common word number" + std::to_string(i));
  }
  e.Finalize();
  EXPECT_EQ(e.TopK("common", 5).size(), 5u);
  EXPECT_EQ(e.TopK("common", 0).size(), 0u);
}

TEST(SearchTest, TiesBrokenByDocIdForDeterminism) {
  SearchEngine e;
  e.AddDocument(5, "same text");
  e.AddDocument(3, "same text");
  e.AddDocument(9, "same text");
  e.Finalize();
  auto results = e.TopK("same", 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].doc_id, 3);
  EXPECT_EQ(results[1].doc_id, 5);
  EXPECT_EQ(results[2].doc_id, 9);
}

TEST(SearchTest, CaseAndPunctuationInsensitive) {
  SearchEngine e = ThreeDocs();
  EXPECT_GT(e.Score("LEBRON, james!", 0), 0.0);
  EXPECT_NEAR(e.Score("LEBRON, james!", 0), e.Score("lebron james", 0),
              1e-12);
}

TEST(SearchTest, RareTermOutweighsCommonTerm) {
  SearchEngine e;
  // "common" is in every doc; "rare" in one.
  e.AddDocument(0, "common rare");
  e.AddDocument(1, "common x");
  e.AddDocument(2, "common y");
  e.AddDocument(3, "common z");
  e.Finalize();
  EXPECT_GT(e.Idf("rare"), e.Idf("common"));
  auto results = e.TopK("rare", 4);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc_id, 0);
}

TEST(SearchTest, TermFrequencySaturates) {
  SearchEngine e;
  e.AddDocument(0, "word");
  e.AddDocument(1, "word word");
  e.AddDocument(2, "word word word word word word word word");
  // Pad lengths to be equal so only tf varies.
  e.Finalize();
  double s1 = e.Score("word", 0);
  double s2 = e.Score("word", 1);
  double s8 = e.Score("word", 2);
  EXPECT_GT(s2, s1);
  // Saturation: the step from 2 to 8 occurrences is sub-linear. (Length
  // normalization also penalizes doc 2, reinforcing the property.)
  EXPECT_LT(s8 - s2, 6 * (s2 - s1));
}

TEST(SearchTest, LengthNormalizationPenalizesLongDocs) {
  SearchEngine e;
  e.AddDocument(0, "target");
  e.AddDocument(1, "target plus many extra padding words here");
  e.Finalize();
  EXPECT_GT(e.Score("target", 0), e.Score("target", 1));
}

TEST(SearchTest, IndexKnowledgeGraphCoversAliases) {
  kg::KnowledgeGraph kg;
  kg.AddEntity({"Q1", "LeBron James", {"King James"}, "", false, true,
                false});
  kg.AddEntity({"Q2", "Someone Else", {}, "", false, true, false});
  SearchEngine e = IndexKnowledgeGraph(kg);
  auto results = e.TopK("King", 5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc_id, 0);
}

// Property sweep: for any (k1, b) the top hit for an exact full-label
// query is the labelled document.
class Bm25ParamTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Bm25ParamTest, ExactLabelWins) {
  auto [k1, b] = GetParam();
  SearchEngine e({k1, b});
  e.AddDocument(0, "Velmor Systems");
  e.AddDocument(1, "Velmor Harbor");
  e.AddDocument(2, "Systems of Tandry");
  e.Finalize();
  auto results = e.TopK("Velmor Systems", 3);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc_id, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Params, Bm25ParamTest,
    ::testing::Combine(::testing::Values(0.5, 1.2, 2.0),
                       ::testing::Values(0.0, 0.75, 1.0)));

}  // namespace
}  // namespace kglink::search
