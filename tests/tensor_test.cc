// Tensor-library tests: forward-op correctness against hand-computed
// values, and finite-difference gradient checks for every differentiable
// op (the backbone guarantee behind every training result in the repo).
#include "nn/tensor.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace kglink::nn {
namespace {

// Central-difference gradient check: builds the graph twice per element.
// `make_loss` must construct a scalar loss from the given leaf tensors.
void GradCheck(
    std::vector<Tensor> leaves,
    const std::function<Tensor(const std::vector<Tensor>&)>& make_loss,
    float eps = 1e-2f, float tol = 2e-2f) {
  Tensor loss = make_loss(leaves);
  ASSERT_EQ(loss.numel(), 1);
  loss.Backward();

  for (size_t li = 0; li < leaves.size(); ++li) {
    Tensor& leaf = leaves[li];
    const std::vector<float> analytic = leaf.grad();
    for (size_t i = 0; i < leaf.data().size(); ++i) {
      float orig = leaf.data()[i];
      leaf.data()[i] = orig + eps;
      float up = make_loss(leaves).item();
      leaf.data()[i] = orig - eps;
      float down = make_loss(leaves).item();
      leaf.data()[i] = orig;
      float numeric = (up - down) / (2 * eps);
      float diff = std::abs(analytic[i] - numeric);
      float scale = std::max({1.0f, std::abs(analytic[i]),
                              std::abs(numeric)});
      EXPECT_LE(diff / scale, tol)
          << "leaf " << li << " element " << i << ": analytic "
          << analytic[i] << " vs numeric " << numeric;
    }
  }
}

Tensor RandLeaf(std::vector<int> shape, Rng& rng, float scale = 1.0f) {
  return Tensor::Randn(std::move(shape), scale, rng, /*requires_grad=*/true);
}

TEST(TensorTest, FactoryShapesAndValues) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 3);
  EXPECT_EQ(z.numel(), 6);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);

  Tensor f = Tensor::Full({4}, 2.5f);
  EXPECT_EQ(f.rows(), 1);
  EXPECT_EQ(f.cols(), 4);
  for (float v : f.data()) EXPECT_EQ(v, 2.5f);

  Tensor s = Tensor::Scalar(3.0f);
  EXPECT_EQ(s.item(), 3.0f);
}

TEST(TensorTest, MatMulForward) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.data()[0], 58);
  EXPECT_FLOAT_EQ(c.data()[1], 64);
  EXPECT_FLOAT_EQ(c.data()[2], 139);
  EXPECT_FLOAT_EQ(c.data()[3], 154);
}

TEST(TensorTest, AddBroadcastsRowVector) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({1, 2}, {10, 20});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.data()[0], 11);
  EXPECT_FLOAT_EQ(c.data()[1], 22);
  EXPECT_FLOAT_EQ(c.data()[2], 13);
  EXPECT_FLOAT_EQ(c.data()[3], 24);
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  Rng rng(1);
  Tensor x = RandLeaf({5, 7}, rng, 3.0f);
  Tensor y = Softmax(x);
  for (int i = 0; i < 5; ++i) {
    float sum = 0;
    for (int j = 0; j < 7; ++j) sum += y.data()[i * 7 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(TensorTest, SoftmaxIsShiftInvariant) {
  Tensor a = Tensor::FromData({1, 3}, {1, 2, 3});
  Tensor b = Tensor::FromData({1, 3}, {1001, 1002, 1003});
  Tensor ya = Softmax(a);
  Tensor yb = Softmax(b);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(ya.data()[i], yb.data()[i], 1e-5f);
  }
}

TEST(TensorTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(2);
  Tensor x = RandLeaf({3, 4}, rng, 2.0f);
  Tensor ls = LogSoftmax(x);
  Tensor sm = Softmax(x);
  for (size_t i = 0; i < ls.data().size(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(sm.data()[i]), 1e-5f);
  }
}

TEST(TensorTest, TransposeRoundTrip) {
  Rng rng(3);
  Tensor x = RandLeaf({3, 5}, rng);
  Tensor tt = Transpose(Transpose(x));
  for (size_t i = 0; i < x.data().size(); ++i) {
    EXPECT_EQ(x.data()[i], tt.data()[i]);
  }
}

TEST(TensorTest, DetachStopsGradients) {
  Tensor x = Tensor::FromData({2}, {1, 2}, /*requires_grad=*/true);
  Tensor d = Detach(x);
  EXPECT_FALSE(d.requires_grad());
  Tensor loss = Sum(Mul(Add(x, d), x));
  loss.Backward();
  // d(loss)/dx with d treated constant: 2x + d.
  EXPECT_NEAR(x.grad()[0], 2 * 1 + 1, 1e-5f);
  EXPECT_NEAR(x.grad()[1], 2 * 2 + 2, 1e-5f);
}

TEST(TensorTest, GradientAccumulatesWhenReused) {
  Tensor x = Tensor::FromData({1}, {3}, /*requires_grad=*/true);
  Tensor loss = Sum(Add(x, x));  // d/dx = 2
  loss.Backward();
  EXPECT_NEAR(x.grad()[0], 2.0f, 1e-6f);
}

TEST(TensorTest, NoTapeWithoutRequiresGrad) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {1, 0, 0, 1});
  Tensor c = MatMul(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(c.impl()->parents.empty());
}

TEST(TensorTest, EmbeddingLookupGathersAndScatters) {
  Tensor table = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6},
                                  /*requires_grad=*/true);
  Tensor out = EmbeddingLookup(table, {2, 0, 2});
  EXPECT_FLOAT_EQ(out.data()[0], 5);
  EXPECT_FLOAT_EQ(out.data()[1], 6);
  EXPECT_FLOAT_EQ(out.data()[2], 1);
  Sum(out).Backward();
  // Row 2 used twice, row 0 once, row 1 never.
  EXPECT_FLOAT_EQ(table.grad()[0], 1);
  EXPECT_FLOAT_EQ(table.grad()[2], 0);
  EXPECT_FLOAT_EQ(table.grad()[4], 2);
}

TEST(TensorTest, CrossEntropyMatchesManual) {
  Tensor logits = Tensor::FromData({1, 3}, {0.0f, 1.0f, 2.0f});
  Tensor loss = CrossEntropy(logits, {2});
  float z = std::exp(0.0f) + std::exp(1.0f) + std::exp(2.0f);
  EXPECT_NEAR(loss.item(), -std::log(std::exp(2.0f) / z), 1e-5f);
}

TEST(TensorTest, SoftCrossEntropyEqualsHardWhenOneHot) {
  Tensor logits = Tensor::FromData({2, 3}, {0.1f, 0.7f, -1.0f,  //
                                            2.0f, -0.5f, 0.3f});
  Tensor onehot = Tensor::FromData({2, 3}, {0, 1, 0, 1, 0, 0});
  Tensor hard = CrossEntropy(logits, {1, 0});
  Tensor soft = SoftCrossEntropy(logits, onehot);
  EXPECT_NEAR(hard.item(), soft.item(), 1e-5f);
}

TEST(TensorTest, CosineSimilarityOfParallelVectorsIsOne) {
  Tensor a = Tensor::FromData({3}, {1, 2, 3});
  Tensor b = Tensor::FromData({3}, {2, 4, 6});
  EXPECT_NEAR(CosineSimilarity(a, b).item(), 1.0f, 1e-4f);
}

// ----- gradient checks -----

TEST(TensorGradTest, MatMul) {
  Rng rng(10);
  GradCheck({RandLeaf({3, 4}, rng), RandLeaf({4, 2}, rng)},
            [](const std::vector<Tensor>& l) {
              return Mean(MatMul(l[0], l[1]));
            });
}

TEST(TensorGradTest, AddBroadcast) {
  Rng rng(11);
  GradCheck({RandLeaf({3, 4}, rng), RandLeaf({1, 4}, rng)},
            [](const std::vector<Tensor>& l) {
              return Mean(Mul(Add(l[0], l[1]), Add(l[0], l[1])));
            });
}

TEST(TensorGradTest, MulAndScale) {
  Rng rng(12);
  GradCheck({RandLeaf({2, 5}, rng), RandLeaf({2, 5}, rng)},
            [](const std::vector<Tensor>& l) {
              return Sum(Scale(Mul(l[0], l[1]), 0.3f));
            });
}

TEST(TensorGradTest, Transpose) {
  Rng rng(13);
  GradCheck({RandLeaf({3, 2}, rng)}, [](const std::vector<Tensor>& l) {
    return Mean(Mul(Transpose(l[0]), Transpose(l[0])));
  });
}

TEST(TensorGradTest, UnaryOps) {
  Rng rng(14);
  GradCheck({RandLeaf({2, 4}, rng)}, [](const std::vector<Tensor>& l) {
    return Mean(Gelu(Tanh(l[0])));
  });
  GradCheck({RandLeaf({2, 4}, rng)}, [](const std::vector<Tensor>& l) {
    return Mean(Sigmoid(l[0]));
  });
  GradCheck({RandLeaf({2, 4}, rng)}, [](const std::vector<Tensor>& l) {
    return Mean(Exp(Scale(l[0], 0.5f)));
  });
}

TEST(TensorGradTest, ReluAwayFromKink) {
  // Keep inputs away from 0 so the finite difference is valid.
  Tensor x = Tensor::FromData({1, 4}, {1.0f, -1.5f, 2.0f, -0.8f},
                              /*requires_grad=*/true);
  GradCheck({x}, [](const std::vector<Tensor>& l) {
    return Sum(Relu(l[0]));
  });
}

TEST(TensorGradTest, SoftmaxAndLogSoftmax) {
  Rng rng(15);
  GradCheck({RandLeaf({3, 5}, rng)}, [](const std::vector<Tensor>& l) {
    Tensor w = Tensor::FromData({3, 5}, {0.1f, -0.2f, 0.3f, 0.4f, -0.5f,  //
                                         0.5f, 0.1f, -0.1f, 0.2f, 0.3f,  //
                                         -0.3f, 0.2f, 0.1f, -0.4f, 0.2f});
    return Sum(Mul(Softmax(l[0]), w));
  });
  GradCheck({RandLeaf({2, 4}, rng)}, [](const std::vector<Tensor>& l) {
    Tensor w = Tensor::FromData({2, 4},
                                {0.3f, -0.1f, 0.2f, 0.4f,  //
                                 -0.2f, 0.5f, 0.1f, -0.3f});
    return Sum(Mul(LogSoftmax(l[0]), w));
  });
}

TEST(TensorGradTest, LayerNorm) {
  Rng rng(16);
  GradCheck(
      {RandLeaf({3, 6}, rng), RandLeaf({1, 6}, rng), RandLeaf({1, 6}, rng)},
      [](const std::vector<Tensor>& l) {
        return Mean(Mul(LayerNorm(l[0], l[1], l[2]),
                        LayerNorm(l[0], l[1], l[2])));
      },
      1e-2f, 4e-2f);
}

TEST(TensorGradTest, RowsAndSlices) {
  Rng rng(17);
  GradCheck({RandLeaf({4, 6}, rng)}, [](const std::vector<Tensor>& l) {
    Tensor picked = Rows(l[0], {0, 2, 2});
    Tensor sliced = SliceCols(l[0], 1, 3);
    return Add(Mean(Mul(picked, picked)), Mean(sliced));
  });
}

TEST(TensorGradTest, ConcatColsAndRows) {
  Rng rng(18);
  GradCheck({RandLeaf({2, 3}, rng), RandLeaf({2, 2}, rng)},
            [](const std::vector<Tensor>& l) {
              Tensor cat = ConcatCols({l[0], l[1]});
              return Mean(Mul(cat, cat));
            });
  GradCheck({RandLeaf({2, 3}, rng), RandLeaf({1, 3}, rng)},
            [](const std::vector<Tensor>& l) {
              Tensor cat = ConcatRows({l[0], l[1]});
              return Mean(Mul(cat, cat));
            });
}

TEST(TensorGradTest, EmbeddingLookup) {
  Rng rng(19);
  GradCheck({RandLeaf({5, 3}, rng)}, [](const std::vector<Tensor>& l) {
    Tensor e = EmbeddingLookup(l[0], {1, 3, 1, 4});
    return Mean(Mul(e, e));
  });
}

TEST(TensorGradTest, MeanRowsAndSums) {
  Rng rng(20);
  GradCheck({RandLeaf({4, 3}, rng)}, [](const std::vector<Tensor>& l) {
    Tensor m = MeanRows(l[0]);
    return Add(Sum(Mul(m, m)), Scale(Mean(l[0]), 0.7f));
  });
}

TEST(TensorGradTest, CrossEntropy) {
  Rng rng(21);
  GradCheck({RandLeaf({3, 4}, rng)}, [](const std::vector<Tensor>& l) {
    return CrossEntropy(l[0], {1, 3, 0});
  });
}

TEST(TensorGradTest, SoftCrossEntropy) {
  Rng rng(22);
  Tensor targets = Softmax(Tensor::Randn({3, 4}, 1.0f, rng));
  GradCheck({RandLeaf({3, 4}, rng)}, [targets](const std::vector<Tensor>& l) {
    return SoftCrossEntropy(l[0], targets);
  });
}

TEST(TensorGradTest, CosineSimilarity) {
  Rng rng(23);
  GradCheck({RandLeaf({4}, rng), RandLeaf({4}, rng)},
            [](const std::vector<Tensor>& l) {
              return CosineSimilarity(l[0], l[1]);
            });
}

TEST(TensorGradTest, Reshape) {
  Rng rng(24);
  GradCheck({RandLeaf({2, 6}, rng)}, [](const std::vector<Tensor>& l) {
    Tensor r = Reshape(l[0], {3, 4});
    return Mean(Mul(r, r));
  });
}

// Property sweep: softmax output is a distribution for many shapes/scales.
class SoftmaxPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, float>> {};

TEST_P(SoftmaxPropertyTest, RowsAreDistributions) {
  auto [rows, cols, scale] = GetParam();
  Rng rng(static_cast<uint64_t>(rows * 100 + cols * 10) +
          static_cast<uint64_t>(scale));
  Tensor x = Tensor::Randn({rows, cols}, scale, rng);
  Tensor y = Softmax(x);
  for (int i = 0; i < rows; ++i) {
    float sum = 0;
    for (int j = 0; j < cols; ++j) {
      float v = y.data()[static_cast<size_t>(i) * cols + j];
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SoftmaxPropertyTest,
    ::testing::Combine(::testing::Values(1, 3, 16),
                       ::testing::Values(2, 7, 50),
                       ::testing::Values(0.1f, 1.0f, 10.0f)));

}  // namespace
}  // namespace kglink::nn
