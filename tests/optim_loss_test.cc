// Optimizer and loss tests: AdamW convergence, decay exclusions, gradient
// clipping, LR schedule, DMLM distillation behaviour and the uncertainty-
// weighted combined loss (Eq. 17).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "nn/optim.h"
#include "nn/tensor.h"

namespace kglink::nn {
namespace {

TEST(AdamWTest, MinimizesQuadratic) {
  Tensor x = Tensor::FromData({3}, {5.0f, -4.0f, 2.0f},
                              /*requires_grad=*/true);
  AdamWOptions opts;
  opts.lr = 0.1f;
  opts.weight_decay = 0.0f;
  AdamW opt({{"x", x}}, opts);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    Tensor loss = Sum(Mul(x, x));
    loss.Backward();
    opt.Step();
  }
  for (float v : x.data()) EXPECT_NEAR(v, 0.0f, 1e-2f);
}

TEST(AdamWTest, WeightDecayAppliesOnlyToWeights) {
  Tensor w = Tensor::FromData({2}, {1.0f, 1.0f}, true);
  Tensor b = Tensor::FromData({2}, {1.0f, 1.0f}, true);
  Tensor s = Tensor::FromData({1}, {1.0f}, true);
  AdamWOptions opts;
  opts.lr = 0.01f;
  opts.weight_decay = 0.5f;
  AdamW opt({{"layer.w", w}, {"layer.b", b}, {"uw.log_var0", s}}, opts);
  // Zero gradients: only decay moves parameters.
  opt.ZeroGrad();
  w.grad();  // ensure allocated
  b.grad();
  s.grad();
  opt.Step();
  EXPECT_LT(w.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(s.data()[0], 1.0f);
}

TEST(AdamWTest, ClipGradNormScalesDown) {
  Tensor x = Tensor::FromData({2}, {0.0f, 0.0f}, true);
  AdamW opt({{"x", x}}, {});
  x.grad()[0] = 3.0f;
  x.grad()[1] = 4.0f;  // norm 5
  float norm = opt.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(x.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(x.grad()[1], 0.8f, 1e-5f);
  // Below the cap: untouched.
  float norm2 = opt.ClipGradNorm(10.0f);
  EXPECT_NEAR(norm2, 1.0f, 1e-5f);
  EXPECT_NEAR(x.grad()[0], 0.6f, 1e-5f);
}

TEST(ScheduleTest, LinearDecayNoWarmup) {
  LinearDecaySchedule sched(1.0f, 10);
  EXPECT_FLOAT_EQ(sched.LrAt(0), 1.0f);
  EXPECT_FLOAT_EQ(sched.LrAt(5), 0.5f);
  EXPECT_FLOAT_EQ(sched.LrAt(10), 0.0f);
  EXPECT_FLOAT_EQ(sched.LrAt(20), 0.0f);
}

TEST(DmlmLossTest, ZeroWhenStudentEqualsTeacherSharp) {
  // Identical logits minimize the soft CE up to the teacher's entropy;
  // check that identical logits score lower than different ones.
  Tensor logits = Tensor::FromData({1, 4}, {5.0f, 0.0f, 0.0f, 0.0f}, true);
  Tensor same = Tensor::FromData({1, 4}, {5.0f, 0.0f, 0.0f, 0.0f});
  Tensor diff = Tensor::FromData({1, 4}, {0.0f, 5.0f, 0.0f, 0.0f});
  float match = DmlmLoss(logits, same, 2.0f).item();
  float mismatch = DmlmLoss(logits, diff, 2.0f).item();
  EXPECT_LT(match, mismatch);
}

TEST(DmlmLossTest, TemperatureSoftensTeacher) {
  // With a very high temperature the teacher approaches uniform, so the
  // loss approaches the uniform cross-entropy regardless of agreement.
  Tensor student = Tensor::FromData({1, 4}, {0.0f, 0.0f, 0.0f, 0.0f}, true);
  Tensor teacher = Tensor::FromData({1, 4}, {100.0f, 0.0f, 0.0f, 0.0f});
  float high_t = DmlmLoss(student, teacher, 1000.0f).item();
  EXPECT_NEAR(high_t, std::log(4.0f), 1e-2f);
}

TEST(DmlmLossTest, GradientsFlowToStudentOnly) {
  Tensor student = Tensor::FromData({1, 3}, {0.1f, 0.2f, 0.3f}, true);
  Tensor teacher = Tensor::FromData({1, 3}, {1.0f, 0.0f, 0.0f}, true);
  DmlmLoss(student, teacher, 2.0f).Backward();
  float s_grad = 0, t_grad = 0;
  for (float g : student.grad()) s_grad += std::abs(g);
  for (float g : teacher.grad()) t_grad += std::abs(g);
  EXPECT_GT(s_grad, 0.0f);
  EXPECT_EQ(t_grad, 0.0f);
}

TEST(UncertaintyLossTest, MatchesClosedForm) {
  UncertaintyWeightedLoss uw(0.4f, -0.2f);
  Tensor dmlm = Tensor::Scalar(2.0f);
  Tensor ce = Tensor::Scalar(3.0f);
  float expected = 0.5f * std::exp(-0.4f) * 2.0f +
                   0.5f * std::exp(0.2f) * 3.0f + 0.5f * (0.4f - 0.2f);
  EXPECT_NEAR(uw.Combine(dmlm, ce).item(), expected, 1e-5f);
}

TEST(UncertaintyLossTest, SigmasReceiveGradients) {
  UncertaintyWeightedLoss uw;
  Tensor dmlm = Tensor::Scalar(2.0f);
  Tensor ce = Tensor::Scalar(3.0f);
  uw.Combine(dmlm, ce).Backward();
  std::vector<NamedParam> params;
  uw.CollectParams(&params);
  ASSERT_EQ(params.size(), 2u);
  for (auto& p : params) {
    EXPECT_NE(p.tensor.grad()[0], 0.0f) << p.name;
  }
}

TEST(UncertaintyLossTest, FrozenSigmasGetNoGradient) {
  UncertaintyWeightedLoss uw;
  uw.SetFrozen(true);
  Tensor dmlm = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor ce = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  uw.Combine(dmlm, ce).Backward();
  std::vector<NamedParam> params;
  uw.CollectParams(&params);
  for (auto& p : params) {
    EXPECT_EQ(p.tensor.grad()[0], 0.0f) << p.name;
  }
  // Task losses still receive gradient.
  EXPECT_NE(dmlm.grad()[0], 0.0f);
  EXPECT_NE(ce.grad()[0], 0.0f);
}

TEST(UncertaintyLossTest, HigherUncertaintyDownWeightsTask) {
  // Larger log sigma0^2 shrinks the DMLM term's weight.
  UncertaintyWeightedLoss low(0.0f, 0.0f);
  UncertaintyWeightedLoss high(2.0f, 0.0f);
  Tensor dmlm = Tensor::Scalar(10.0f);
  Tensor ce = Tensor::Scalar(0.0f);
  EXPECT_GT(low.Combine(dmlm, ce).item(), high.Combine(dmlm, ce).item());
}

// Parameterized sanity sweep of the schedule across step counts.
class SchedulePropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SchedulePropertyTest, MonotoneNonIncreasingToZero) {
  int64_t total = GetParam();
  LinearDecaySchedule sched(0.7f, total);
  float prev = sched.LrAt(0);
  EXPECT_FLOAT_EQ(prev, 0.7f);
  for (int64_t s = 1; s <= total; ++s) {
    float cur = sched.LrAt(s);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
  EXPECT_FLOAT_EQ(sched.LrAt(total), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Totals, SchedulePropertyTest,
                         ::testing::Values<int64_t>(1, 7, 100));

}  // namespace
}  // namespace kglink::nn
