// Randomized property tests pinning the flat-index SearchEngine to the
// retained naive reference scorer (reference_scorer.h): TopK, Score and
// ExplainScore must agree *bit-exactly* — same scores, same order, same
// tie-breaks — across random corpora, repeated query terms, empty queries,
// k beyond the corpus size, and non-ASCII vocabulary. Both libraries build
// with -ffp-contract=off, so any disagreement is a real logic divergence,
// not floating-point noise.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "search/reference_scorer.h"
#include "search/search_engine.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace kglink::search {
namespace {

// Word pool mixing short/ambiguous ASCII terms with accented and CJK
// labels (multi-byte UTF-8 must tokenize identically on both paths).
const char* kWords[] = {
    "rust",  "echo",   "peter", "steele", "mia",   "torv",
    "album", "human",  "km",    "k2",     "köln",  "zürich",
    "東京",  "大阪",   "crème", "brûlée", "naïve", "x",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

std::string RandomText(Rng& rng, int max_words) {
  std::string text;
  int n = static_cast<int>(rng.Uniform(static_cast<uint64_t>(max_words + 1)));
  for (int i = 0; i < n; ++i) {
    if (i > 0) text += rng.Uniform(8) == 0 ? ", " : " ";
    text += kWords[rng.Uniform(kNumWords)];
  }
  return text;
}

struct EnginePair {
  SearchEngine flat;
  NaiveReferenceScorer naive;
  std::vector<int32_t> doc_ids;

  explicit EnginePair(Rng& rng, int max_docs) {
    int n = static_cast<int>(rng.Uniform(static_cast<uint64_t>(max_docs)));
    for (int i = 0; i < n; ++i) {
      // Non-contiguous external ids exercise the id <-> index mapping.
      int32_t doc_id = static_cast<int32_t>(i * 7 + 3);
      std::string text = RandomText(rng, 12);
      flat.AddDocument(doc_id, text);
      naive.AddDocument(doc_id, text);
      doc_ids.push_back(doc_id);
    }
    flat.Finalize();
    naive.Finalize();
  }
};

void ExpectSameResults(const std::vector<SearchResult>& got,
                       const std::vector<SearchResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc_id, want[i].doc_id) << "rank " << i;
    // Bit-exact, not approximate: EXPECT_EQ on the doubles.
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

TEST(SearchParityTest, RandomCorporaTopKScoreAndExplainAgree) {
  Rng rng(20260806);
  for (int trial = 0; trial < 25; ++trial) {
    EnginePair e(rng, /*max_docs=*/120);
    int64_t n = e.flat.num_documents();
    ASSERT_EQ(n, e.naive.num_documents());
    EXPECT_EQ(e.flat.average_doc_length(), e.naive.average_doc_length());

    for (int q = 0; q < 12; ++q) {
      std::string query = RandomText(rng, 6);
      // k sweeps 0, 1, mid, and past the corpus size.
      for (int k : {0, 1, 5, static_cast<int>(n) + 7}) {
        ExpectSameResults(e.flat.TopK(query, k), e.naive.TopK(query, k));
      }
      // Point scores and per-term breakdowns for a random document.
      if (!e.doc_ids.empty()) {
        int32_t doc = e.doc_ids[rng.Uniform(e.doc_ids.size())];
        EXPECT_EQ(e.flat.Score(query, doc), e.naive.Score(query, doc));
        auto flat_terms = e.flat.ExplainScore(query, doc);
        auto naive_terms = e.naive.ExplainScore(query, doc);
        ASSERT_EQ(flat_terms.size(), naive_terms.size());
        double sum = 0.0;
        for (size_t i = 0; i < flat_terms.size(); ++i) {
          EXPECT_EQ(flat_terms[i].term, naive_terms[i].term);
          EXPECT_EQ(flat_terms[i].idf, naive_terms[i].idf);
          EXPECT_EQ(flat_terms[i].term_freq, naive_terms[i].term_freq);
          EXPECT_EQ(flat_terms[i].contribution, naive_terms[i].contribution);
          sum += flat_terms[i].contribution;
        }
        // The breakdown sums back to the score (repeated query terms fold,
        // so the addition order may differ: NEAR, not EQ).
        EXPECT_NEAR(sum, e.flat.Score(query, doc), 1e-12);
      }
      // IDF parity, including for terms unseen in this corpus.
      EXPECT_EQ(e.flat.Idf("rust"), e.naive.Idf("rust"));
      EXPECT_EQ(e.flat.Idf("never-indexed-term"),
                e.naive.Idf("never-indexed-term"));
    }
  }
}

TEST(SearchParityTest, RepeatedQueryTermsAgree) {
  Rng rng(7);
  EnginePair e(rng, 60);
  // Each term's contribution is added once per query occurrence on both
  // paths, so repeats change scores — and must change them identically.
  for (const char* query :
       {"rust rust", "rust rust rust echo", "köln köln 東京 東京 東京"}) {
    ExpectSameResults(e.flat.TopK(query, 10), e.naive.TopK(query, 10));
    for (int32_t doc : e.doc_ids) {
      EXPECT_EQ(e.flat.Score(query, doc), e.naive.Score(query, doc));
    }
  }
}

TEST(SearchParityTest, EmptyAndSeparatorOnlyQueries) {
  Rng rng(11);
  EnginePair e(rng, 40);
  for (const char* query : {"", "   ", ",.;:!?", "\t\n"}) {
    EXPECT_TRUE(e.flat.TopK(query, 10).empty());
    EXPECT_TRUE(e.naive.TopK(query, 10).empty());
    for (int32_t doc : e.doc_ids) {
      EXPECT_EQ(e.flat.Score(query, doc), 0.0);
      EXPECT_EQ(e.naive.Score(query, doc), 0.0);
    }
  }
}

TEST(SearchParityTest, TieBreaksAreByDocIdOnBothPaths) {
  SearchEngine flat;
  NaiveReferenceScorer naive;
  // Five identical documents: all scores tie, so the order is purely the
  // tie-break. Ids added out of order to make accidental agreement
  // unlikely.
  for (int32_t id : {40, 10, 30, 20, 50}) {
    flat.AddDocument(id, "rust album");
    naive.AddDocument(id, "rust album");
  }
  flat.Finalize();
  naive.Finalize();
  auto f = flat.TopK("rust", 5);
  auto r = naive.TopK("rust", 5);
  ASSERT_EQ(f.size(), 5u);
  for (size_t i = 1; i < f.size(); ++i) {
    EXPECT_LT(f[i - 1].doc_id, f[i].doc_id);
    EXPECT_EQ(f[i - 1].score, f[i].score);
  }
  ExpectSameResults(f, r);
}

TEST(SearchParityTest, ExpiredDeadlineReturnsEmptyNotPartial) {
  Rng rng(13);
  EnginePair e(rng, 60);
  RequestContext rc;
  rc.deadline = Deadline::Expired();
  EXPECT_TRUE(e.flat.TopK("rust echo album", 10, &rc).empty());
  // A null / unbounded context must not change results.
  RequestContext unbounded;
  ExpectSameResults(e.flat.TopK("rust echo album", 10, &unbounded),
                    e.naive.TopK("rust echo album", 10));
}

TEST(SearchParityTest, SingleAndZeroDocumentCorpora) {
  {
    SearchEngine flat;
    NaiveReferenceScorer naive;
    flat.Finalize();
    naive.Finalize();
    EXPECT_TRUE(flat.TopK("rust", 5).empty());
    EXPECT_TRUE(naive.TopK("rust", 5).empty());
  }
  {
    SearchEngine flat;
    NaiveReferenceScorer naive;
    flat.AddDocument(9, "köln 東京 köln");
    naive.AddDocument(9, "köln 東京 köln");
    flat.Finalize();
    naive.Finalize();
    ExpectSameResults(flat.TopK("köln", 3), naive.TopK("köln", 3));
    EXPECT_EQ(flat.Score("köln", 9), naive.Score("köln", 9));
    EXPECT_GT(flat.Score("köln", 9), 0.0);
  }
}

}  // namespace
}  // namespace kglink::search
