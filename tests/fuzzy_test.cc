// Fuzzy term index tests: edit-distance predicate correctness (all four
// Damerau operations), lookup recall/precision, and property sweeps
// against a brute-force distance check.
#include "search/fuzzy.h"

#include <gtest/gtest.h>

#include "data/names.h"
#include "util/rng.h"

namespace kglink::search {
namespace {

TEST(WithinOneEditTest, AllOperations) {
  EXPECT_TRUE(FuzzyTermIndex::WithinOneEdit("lebron", "lebron"));  // equal
  EXPECT_TRUE(FuzzyTermIndex::WithinOneEdit("lebron", "lebro"));   // delete
  EXPECT_TRUE(FuzzyTermIndex::WithinOneEdit("lebro", "lebron"));   // insert
  EXPECT_TRUE(FuzzyTermIndex::WithinOneEdit("lebron", "lebrun"));  // subst
  EXPECT_TRUE(FuzzyTermIndex::WithinOneEdit("lebron", "leborn"));  // transp
  EXPECT_TRUE(FuzzyTermIndex::WithinOneEdit("a", ""));
  EXPECT_TRUE(FuzzyTermIndex::WithinOneEdit("", ""));
}

TEST(WithinOneEditTest, RejectsDistanceTwo) {
  EXPECT_FALSE(FuzzyTermIndex::WithinOneEdit("lebron", "lebr"));
  EXPECT_FALSE(FuzzyTermIndex::WithinOneEdit("lebron", "lberno"));
  EXPECT_FALSE(FuzzyTermIndex::WithinOneEdit("abc", "cba"));
  EXPECT_FALSE(FuzzyTermIndex::WithinOneEdit("abcd", "abXY"));
  EXPECT_FALSE(FuzzyTermIndex::WithinOneEdit("ab", ""));
}

TEST(FuzzyIndexTest, LookupFindsNeighbors) {
  FuzzyTermIndex index;
  for (const char* t : {"lebron", "james", "lebrun", "jamie", "curry"}) {
    index.AddTerm(t);
  }
  index.Finalize();
  auto hits = index.Lookup("lebron");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], "lebron");
  EXPECT_EQ(hits[1], "lebrun");
  // Typo'd query still reaches the right terms.
  auto typo_hits = index.Lookup("leborn");
  EXPECT_FALSE(typo_hits.empty());
  EXPECT_EQ(typo_hits[0], "lebron");
  // No false positives at distance 2+.
  EXPECT_TRUE(index.Lookup("xyzzy").empty());
}

TEST(FuzzyIndexTest, DuplicateAddIsIdempotent) {
  FuzzyTermIndex index;
  index.AddTerm("word");
  index.AddTerm("word");
  index.Finalize();
  EXPECT_EQ(index.num_terms(), 1);
  EXPECT_EQ(index.Lookup("word").size(), 1u);
}

TEST(FuzzyIndexTest, EmptyTermIgnored) {
  FuzzyTermIndex index;
  index.AddTerm("");
  index.Finalize();
  EXPECT_EQ(index.num_terms(), 0);
}

// Brute-force Damerau-Levenshtein (restricted) for verification.
int BruteDistance(const std::string& a, const std::string& b) {
  size_t la = a.size();
  size_t lb = b.size();
  std::vector<std::vector<int>> d(la + 1, std::vector<int>(lb + 1, 0));
  for (size_t i = 0; i <= la; ++i) d[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= lb; ++j) d[0][j] = static_cast<int>(j);
  for (size_t i = 1; i <= la; ++i) {
    for (size_t j = 1; j <= lb; ++j) {
      int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return d[la][lb];
}

TEST(FuzzyPropertyTest, PredicateMatchesBruteForce) {
  Rng rng(17);
  data::NameGenerator names(&rng);
  std::vector<std::string> words;
  for (int i = 0; i < 40; ++i) words.push_back(names.Word());
  // Include mutated copies to exercise near-miss pairs.
  for (int i = 0; i < 40; ++i) {
    std::string w = words[static_cast<size_t>(i)];
    size_t pos = rng.Uniform(w.size());
    switch (rng.Uniform(3)) {
      case 0:
        w.erase(pos, 1);
        break;
      case 1:
        w.insert(pos, 1, 'x');
        break;
      default:
        if (pos + 1 < w.size()) std::swap(w[pos], w[pos + 1]);
    }
    words.push_back(std::move(w));
  }
  for (const auto& a : words) {
    for (const auto& b : words) {
      EXPECT_EQ(FuzzyTermIndex::WithinOneEdit(a, b),
                BruteDistance(a, b) <= 1)
          << a << " vs " << b;
    }
  }
}

TEST(FuzzyPropertyTest, LookupEqualsLinearScan) {
  Rng rng(18);
  data::NameGenerator names(&rng);
  FuzzyTermIndex index;
  std::vector<std::string> vocab;
  for (int i = 0; i < 120; ++i) {
    std::string w = names.Word();
    vocab.push_back(w);
    index.AddTerm(w);
  }
  index.Finalize();
  for (int q = 0; q < 30; ++q) {
    std::string query = vocab[rng.Uniform(vocab.size())];
    if (rng.Bernoulli(0.5) && query.size() > 2) {
      query.erase(rng.Uniform(query.size()), 1);
    }
    std::set<std::string> expected;
    for (const auto& t : vocab) {
      if (FuzzyTermIndex::WithinOneEdit(query, t)) expected.insert(t);
    }
    auto got = index.Lookup(query);
    EXPECT_EQ(std::set<std::string>(got.begin(), got.end()), expected)
        << query;
  }
}

}  // namespace
}  // namespace kglink::search
