// Crash-safety fuzz over the snapshot loader: every truncation prefix and
// every single-byte flip of a real snapshot must load cleanly or fail with
// a structured error — never crash, never trip a sanitizer. Uses a small
// hand-built KG so the file is a few KB and the sweep stays exhaustive.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "kg/knowledge_graph.h"
#include "search/search_engine.h"
#include "store/snapshot.h"
#include "store/snapshot_format.h"
#include "store/snapshot_writer.h"
#include "util/csv.h"

namespace kglink::store {
namespace {

kg::KnowledgeGraph SmallKg() {
  kg::KnowledgeGraph kg;
  kg::PredicateId born_in = kg.AddPredicate("born in");
  kg::EntityId type_city = kg.AddEntity(
      {"Q1", "city", {"town", "municipality"}, "a large settlement", true});
  kg::EntityId type_person =
      kg.AddEntity({"Q2", "human", {"person"}, "a people", true});
  kg::EntityId akron =
      kg.AddEntity({"Q3", "Akron", {"Akron Ohio"}, "city in Ohio"});
  kg::EntityId lebron = kg.AddEntity(
      {"Q4", "LeBron James", {"King James"}, "basketball player", false,
       true});
  kg::EntityId cle = kg.AddEntity({"Q5", "Cleveland", {}, "city in Ohio"});
  kg.AddTriple(akron, kg::KnowledgeGraph::kInstanceOf, type_city);
  kg.AddTriple(cle, kg::KnowledgeGraph::kInstanceOf, type_city);
  kg.AddTriple(lebron, kg::KnowledgeGraph::kInstanceOf, type_person);
  kg.AddTriple(lebron, born_in, akron);
  return kg;
}

class StoreFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kg_ = SmallKg();
    engine_ = search::IndexKnowledgeGraph(kg_);
    path_ = ::testing::TempDir() + "store_fuzz_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(WriteSnapshot(path_, kg_, engine_, {}).ok());
    auto bytes = ReadFile(path_);
    ASSERT_TRUE(bytes.ok());
    bytes_ = *bytes;
  }

  // Loads `mutated` end to end (Open + both views) and, when everything
  // validates, exercises the borrowed views so any bad pointer the
  // validator missed would be dereferenced under ASan/UBSan. Returns
  // whether the load fully succeeded.
  bool LoadAndExercise(const std::string& mutated, ValidateMode mode) {
    std::string target = path_ + ".mut";
    EXPECT_TRUE(WriteFile(target, mutated).ok());
    LoadOptions options;
    options.validate = mode;
    auto snap = Snapshot::Open(target, options);
    if (!snap.ok()) return false;
    auto engine = (*snap)->MakeEngine();
    auto graph = (*snap)->MakeKg();
    if (!engine.ok() || !graph.ok()) return false;
    auto results = engine->TopK("LeBron James", 3);
    for (const auto& r : results) engine->Score("LeBron James", r.doc_id);
    for (kg::EntityId id = 0; id < graph->num_entities(); ++id) {
      for (const kg::Edge& e : graph->Edges(id)) {
        EXPECT_GE(e.target, 0);
        EXPECT_LT(e.target, graph->num_entities());
      }
      graph->NeighborSet(id);
      graph->InstanceTypes(id);
    }
    return true;
  }

  kg::KnowledgeGraph kg_;
  search::SearchEngine engine_;
  std::string path_;
  std::string bytes_;
};

TEST_F(StoreFuzzTest, EveryTruncationPrefixLoadsCleanOrFails) {
  // A snapshot of the small KG is a few KB; sweep every prefix length.
  ASSERT_LT(bytes_.size(), 64u * 1024);
  for (size_t len = 0; len < bytes_.size(); ++len) {
    std::string truncated = bytes_.substr(0, len);
    EXPECT_FALSE(LoadAndExercise(truncated, ValidateMode::kEager))
        << "truncation to " << len << " bytes validated as a full snapshot";
    // Lazy mode must be equally crash-free (it may defer the failure to
    // MakeEngine/MakeKg, which LoadAndExercise also runs).
    LoadAndExercise(truncated, ValidateMode::kLazy);
  }
  // Sanity: the untruncated file loads.
  EXPECT_TRUE(LoadAndExercise(bytes_, ValidateMode::kEager));
}

TEST_F(StoreFuzzTest, EverySingleByteFlipIsCaughtEagerly) {
  for (size_t pos = 0; pos < bytes_.size(); ++pos) {
    std::string flipped = bytes_;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0xFF);
    // Eager validation covers every byte: header + section CRCs, the
    // whole-file CRC, and the trailing magic. No flip may slip through.
    EXPECT_FALSE(LoadAndExercise(flipped, ValidateMode::kEager))
        << "flip at byte " << pos << " validated as clean";
  }
}

TEST_F(StoreFuzzTest, SingleByteFlipsNeverCrashLazyLoads) {
  // Lazy mode skips the whole-file CRC, so flips in inter-section padding
  // can validate; the requirement is crash-freedom and structural sanity
  // of whatever loads (LoadAndExercise dereferences the views).
  for (size_t pos = 0; pos < bytes_.size(); ++pos) {
    std::string flipped = bytes_;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0xFF);
    LoadAndExercise(flipped, ValidateMode::kLazy);
  }
}

TEST_F(StoreFuzzTest, RandomMultiByteCorruptionNeverCrashes) {
  // Deterministic xorshift; multiple simultaneous corruptions per trial.
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 256; ++trial) {
    std::string mutated = bytes_;
    int edits = 1 + static_cast<int>(next() % 8);
    for (int e = 0; e < edits; ++e) {
      size_t pos = next() % mutated.size();
      mutated[pos] = static_cast<char>(next());
    }
    LoadAndExercise(mutated, ValidateMode::kEager);
    LoadAndExercise(mutated, ValidateMode::kLazy);
  }
}

}  // namespace
}  // namespace kglink::store
