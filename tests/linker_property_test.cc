// Property tests of the Part-1 pipeline over the generated world: for
// many configurations and tables, structural invariants must hold
// (pruned ⊆ retrieved, score bounds, row/type budgets, numeric exclusion).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/corpus_gen.h"
#include "data/world.h"
#include "linker/pipeline.h"
#include "search/search_engine.h"

namespace kglink::linker {
namespace {

struct Shared {
  data::World world;
  search::SearchEngine engine;
  table::Corpus corpus;
  Shared()
      : world(data::GenerateWorld({.seed = 21, .scale = 0.3})),
        engine(search::IndexKnowledgeGraph(world.kg)),
        corpus(data::GenerateVizNetCorpus(
            world, data::CorpusOptions::VizNetDefaults(16))) {}
};

Shared& Env() {
  static Shared& env = *new Shared();
  return env;
}

class PipelinePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PipelinePropertyTest, InvariantsHold) {
  auto [top_k, max_entities, max_ct, mode] = GetParam();
  LinkerConfig config;
  config.top_k_rows = top_k;
  config.max_entities_per_cell = max_entities;
  config.max_candidate_types = max_ct;
  config.row_filter_mode = mode == 0 ? RowFilterMode::kLinkingScore
                                     : RowFilterMode::kOriginalOrder;
  Shared& env = Env();
  KgPipeline pipeline(&env.world.kg, &env.engine, config);

  for (size_t i = 0; i < env.corpus.tables.size(); i += 3) {
    const table::Table& t = env.corpus.tables[i].table;
    ProcessedTable pt = pipeline.Process(t);

    // Row budget respected; kept rows are valid, unique source indices.
    int expected_rows = std::min(
        {t.num_rows(), top_k > 0 ? top_k : config.max_rows_cap,
         config.max_rows_cap});
    EXPECT_EQ(pt.filtered.num_rows(), expected_rows);
    std::set<int> unique_rows(pt.kept_rows.begin(), pt.kept_rows.end());
    EXPECT_EQ(unique_rows.size(), pt.kept_rows.size());
    for (int r : pt.kept_rows) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, t.num_rows());
    }
    // Linking-score mode: kept rows sorted by non-increasing score.
    if (config.row_filter_mode == RowFilterMode::kLinkingScore) {
      for (size_t r = 1; r < pt.row_links.size(); ++r) {
        EXPECT_GE(pt.row_links[r - 1].row_score + 1e-9,
                  pt.row_links[r].row_score);
      }
    }

    EXPECT_EQ(pt.columns.size(), static_cast<size_t>(t.num_cols()));
    for (const RowLinks& row : pt.row_links) {
      double recomputed = 0;
      for (const CellLinks& cell : row.cells) {
        // Retrieval budget.
        EXPECT_LE(cell.retrieved.size(),
                  static_cast<size_t>(max_entities));
        // Pruned candidates are a subset of retrieved candidates.
        for (const EntityCandidate& p : cell.pruned) {
          bool found = false;
          for (const EntityCandidate& r2 : cell.retrieved) {
            if (r2.entity == p.entity) found = true;
          }
          EXPECT_TRUE(found);
          EXPECT_GT(p.overlap_score, 0.0);
          EXPECT_GE(p.linking_score, 0.0);
        }
        // Non-linkable cells have no candidates and zero score.
        if (!cell.linkable) {
          EXPECT_TRUE(cell.retrieved.empty());
          EXPECT_EQ(cell.score, 0.0);
        }
        EXPECT_GE(cell.score, 0.0);
        recomputed += cell.score;
      }
      EXPECT_NEAR(row.row_score, recomputed, 1e-9);
    }

    for (int c = 0; c < t.num_cols(); ++c) {
      const ColumnKgInfo& info = pt.columns[static_cast<size_t>(c)];
      EXPECT_LE(info.candidate_types.size(), static_cast<size_t>(max_ct));
      EXPECT_EQ(info.candidate_types.size(),
                info.candidate_type_labels.size());
      // Candidate-type scores sorted descending.
      for (size_t j = 1; j < info.candidate_types.size(); ++j) {
        EXPECT_GE(info.candidate_types[j - 1].score,
                  info.candidate_types[j].score);
      }
      // Numeric columns never carry KG info; stats are populated.
      if (info.is_numeric) {
        EXPECT_TRUE(info.candidate_types.empty());
        EXPECT_FALSE(info.has_feature);
        EXPECT_GT(info.stats.count, 0);
      }
      // Feature flag consistent with the sequence.
      EXPECT_EQ(info.has_feature, !info.feature_sequence.empty());
      // No PERSON/DATE candidate types (paper's label filter).
      for (const CandidateType& ct : info.candidate_types) {
        EXPECT_FALSE(Env().world.kg.entity(ct.entity).is_person);
        EXPECT_FALSE(Env().world.kg.entity(ct.entity).is_date);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelinePropertyTest,
    ::testing::Combine(::testing::Values(5, 25, 0),   // top_k (0 = all)
                       ::testing::Values(3, 10),      // entities per cell
                       ::testing::Values(1, 3),       // candidate types
                       ::testing::Values(0, 1)));     // filter mode

}  // namespace
}  // namespace kglink::linker
