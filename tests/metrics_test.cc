// Metrics tests: accuracy, weighted F1 (validated against hand-computed
// scikit-learn-convention values), per-class deltas, table printer — plus
// the obs metrics-registry export: explicit overflow reporting and the
// SnapshotJson consistency contract under concurrent writers.
#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "eval/table_printer.h"
#include "obs/json_util.h"
#include "obs/metrics.h"

namespace kglink::eval {
namespace {

TEST(MetricsTest, PerfectPredictions) {
  Metrics m = ComputeMetrics({0, 1, 2, 1}, {0, 1, 2, 1}, 3);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.weighted_f1, 1.0);
  EXPECT_DOUBLE_EQ(m.macro_f1, 1.0);
  EXPECT_EQ(m.total, 4);
}

TEST(MetricsTest, HandComputedWeightedF1) {
  // gold: [0,0,0,1], pred: [0,0,1,1]
  //   class0: tp=2 fp=0 fn=1 -> p=1, r=2/3, f1=0.8, support 3
  //   class1: tp=1 fp=1 fn=0 -> p=0.5, r=1, f1=2/3, support 1
  // weighted = (0.8*3 + 2/3*1)/4 = 0.7666...
  Metrics m = ComputeMetrics({0, 0, 0, 1}, {0, 0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.75);
  EXPECT_NEAR(m.weighted_f1, (0.8 * 3 + (2.0 / 3.0)) / 4.0, 1e-12);
  EXPECT_NEAR(m.macro_f1, (0.8 + 2.0 / 3.0) / 2.0, 1e-12);
  EXPECT_EQ(m.per_class[0].support, 3);
  EXPECT_DOUBLE_EQ(m.per_class[0].precision, 1.0);
  EXPECT_NEAR(m.per_class[0].recall, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, UnsupportedClassesExcludedFromAverages) {
  // Class 2 never appears in gold; predictions into it only hurt class 0.
  Metrics m = ComputeMetrics({0, 0}, {0, 2}, 3);
  // class0: tp=1 fn=1 fp=0 -> f1 = 2/3; class2 support 0 excluded.
  EXPECT_NEAR(m.weighted_f1, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.macro_f1, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, EmptyInput) {
  Metrics m = ComputeMetrics({}, {}, 4);
  EXPECT_EQ(m.total, 0);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
}

TEST(MetricsTest, PerClassAccuracyDelta) {
  std::vector<int> gold = {0, 0, 0, 1, 1, 1};
  std::vector<int> before = {0, 1, 1, 1, 0, 0};  // class0: 1/3, class1: 1/3
  std::vector<int> after = {0, 0, 0, 1, 0, 0};   // class0: 3/3, class1: 1/3
  auto deltas = PerClassAccuracyDelta(gold, before, after, 2,
                                      /*min_support=*/1);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].label, 0);  // biggest improvement first
  EXPECT_NEAR(deltas[0].delta, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(deltas[1].delta, 0.0, 1e-12);
}

TEST(MetricsTest, PerClassDeltaRespectsMinSupport) {
  std::vector<int> gold = {0, 1};
  auto deltas = PerClassAccuracyDelta(gold, gold, gold, 2,
                                      /*min_support=*/2);
  EXPECT_TRUE(deltas.empty());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter p({"Model", "Acc"});
  p.AddRow({"KGLink", "87.12"});
  p.AddRow({"A", "1"});
  std::string out = p.Render();
  EXPECT_NE(out.find("| Model  | Acc   |"), std::string::npos);
  EXPECT_NE(out.find("| KGLink | 87.12 |"), std::string::npos);
  EXPECT_NE(out.find("| A      | 1     |"), std::string::npos);
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(TablePrinter::Pct(0.87123), "87.12");
  EXPECT_EQ(TablePrinter::Num(3.14159, 3), "3.142");
}

}  // namespace
}  // namespace kglink::eval

namespace kglink::obs {
namespace {

TEST(MetricsRegistrySnapshotTest, HistogramReportsExplicitOverflow) {
  MetricsRegistry reg;
  HistogramBuckets buckets;
  buckets.upper_bounds = {1.0, 2.0};
  Histogram& h = reg.GetHistogram("test.latency", buckets);
  h.Record(0.5);  // bucket le=1
  h.Record(5.0);  // overflow
  h.Record(10.0);  // overflow

  auto doc = ParseJson(reg.SnapshotJson());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* hist = doc->Find("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* lat = hist->Find("test.latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->NumberOr("count", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(lat->NumberOr("overflow", -1.0), 2.0);
  const JsonValue* bucket_array = lat->Find("buckets");
  ASSERT_NE(bucket_array, nullptr);
  // Finite buckets plus the +Inf overflow bucket; the "overflow" field
  // duplicates the latter so saturation is visible without walking these.
  ASSERT_EQ(bucket_array->array.size(), 3u);
  EXPECT_DOUBLE_EQ(bucket_array->array[0].NumberOr("count", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(bucket_array->array[1].NumberOr("count", -1.0), 0.0);
  EXPECT_EQ(bucket_array->array[2].StringOr("le", ""), "+Inf");
  EXPECT_DOUBLE_EQ(bucket_array->array[2].NumberOr("count", -1.0), 2.0);
}

TEST(MetricsRegistrySnapshotTest, LatencyBucketsCoverServeTail) {
  // Satellite fix for the ~65ms saturation: the default latency scale must
  // reach past 1 second so deadline-bounded serve requests and train steps
  // land in a finite bucket instead of all piling into overflow.
  HistogramBuckets b = HistogramBuckets::LatencyMicros();
  ASSERT_FALSE(b.upper_bounds.empty());
  EXPECT_GE(b.upper_bounds.back(), 1e6);
}

// The publication contract: Record publishes bucket/sum before count
// (release), the exporter reads count first (acquire). A concurrent
// snapshot must therefore never report a count its buckets cannot account
// for — bucket sums run >= count, never behind.
TEST(MetricsRegistrySnapshotTest, ConcurrentWritersNeverTearSnapshot) {
  MetricsRegistry reg;
  HistogramBuckets buckets;
  buckets.upper_bounds = {10.0, 100.0, 1000.0};
  reg.GetHistogram("t.h", buckets);
  reg.GetCounter("t.c");

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20'000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&reg, t] {
      Counter& c = reg.GetCounter("t.c");
      Histogram& h = reg.GetHistogram("t.h");
      for (int i = 0; i < kPerWriter; ++i) {
        c.Add(1);
        h.Record(static_cast<double>((t * kPerWriter + i) % 2000));
      }
    });
  }

  int snapshots = 0;
  while (!done.load(std::memory_order_relaxed) || snapshots == 0) {
    auto doc = ParseJson(reg.SnapshotJson());
    ASSERT_TRUE(doc.has_value());  // never torn into invalid JSON
    const JsonValue* h = doc->Find("histograms")->Find("t.h");
    ASSERT_NE(h, nullptr);
    double count = h->NumberOr("count", -1.0);
    double in_buckets = 0.0;  // the array already includes +Inf
    for (const JsonValue& bucket : h->Find("buckets")->array) {
      in_buckets += bucket.NumberOr("count", 0.0);
    }
    EXPECT_GE(in_buckets, count);
    ++snapshots;
    if (snapshots >= 200) done.store(true, std::memory_order_relaxed);
  }
  for (auto& th : writers) th.join();

  // Quiescent totals are exact.
  auto doc = ParseJson(reg.SnapshotJson());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* h = doc->Find("histograms")->Find("t.h");
  EXPECT_DOUBLE_EQ(h->NumberOr("count", -1.0), kWriters * kPerWriter);
  EXPECT_DOUBLE_EQ(doc->Find("counters")->NumberOr("t.c", -1.0),
                   kWriters * kPerWriter);
  double in_buckets = 0.0;
  for (const JsonValue& bucket : h->Find("buckets")->array) {
    in_buckets += bucket.NumberOr("count", 0.0);
  }
  EXPECT_DOUBLE_EQ(in_buckets, kWriters * kPerWriter);
  // The explicit overflow field mirrors the +Inf bucket.
  EXPECT_DOUBLE_EQ(h->NumberOr("overflow", -1.0),
                   h->Find("buckets")->array.back().NumberOr("count", -2.0));
}

}  // namespace
}  // namespace kglink::obs
