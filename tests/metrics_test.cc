// Metrics tests: accuracy, weighted F1 (validated against hand-computed
// scikit-learn-convention values), per-class deltas, table printer.
#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/table_printer.h"

namespace kglink::eval {
namespace {

TEST(MetricsTest, PerfectPredictions) {
  Metrics m = ComputeMetrics({0, 1, 2, 1}, {0, 1, 2, 1}, 3);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.weighted_f1, 1.0);
  EXPECT_DOUBLE_EQ(m.macro_f1, 1.0);
  EXPECT_EQ(m.total, 4);
}

TEST(MetricsTest, HandComputedWeightedF1) {
  // gold: [0,0,0,1], pred: [0,0,1,1]
  //   class0: tp=2 fp=0 fn=1 -> p=1, r=2/3, f1=0.8, support 3
  //   class1: tp=1 fp=1 fn=0 -> p=0.5, r=1, f1=2/3, support 1
  // weighted = (0.8*3 + 2/3*1)/4 = 0.7666...
  Metrics m = ComputeMetrics({0, 0, 0, 1}, {0, 0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.75);
  EXPECT_NEAR(m.weighted_f1, (0.8 * 3 + (2.0 / 3.0)) / 4.0, 1e-12);
  EXPECT_NEAR(m.macro_f1, (0.8 + 2.0 / 3.0) / 2.0, 1e-12);
  EXPECT_EQ(m.per_class[0].support, 3);
  EXPECT_DOUBLE_EQ(m.per_class[0].precision, 1.0);
  EXPECT_NEAR(m.per_class[0].recall, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, UnsupportedClassesExcludedFromAverages) {
  // Class 2 never appears in gold; predictions into it only hurt class 0.
  Metrics m = ComputeMetrics({0, 0}, {0, 2}, 3);
  // class0: tp=1 fn=1 fp=0 -> f1 = 2/3; class2 support 0 excluded.
  EXPECT_NEAR(m.weighted_f1, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.macro_f1, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, EmptyInput) {
  Metrics m = ComputeMetrics({}, {}, 4);
  EXPECT_EQ(m.total, 0);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
}

TEST(MetricsTest, PerClassAccuracyDelta) {
  std::vector<int> gold = {0, 0, 0, 1, 1, 1};
  std::vector<int> before = {0, 1, 1, 1, 0, 0};  // class0: 1/3, class1: 1/3
  std::vector<int> after = {0, 0, 0, 1, 0, 0};   // class0: 3/3, class1: 1/3
  auto deltas = PerClassAccuracyDelta(gold, before, after, 2,
                                      /*min_support=*/1);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].label, 0);  // biggest improvement first
  EXPECT_NEAR(deltas[0].delta, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(deltas[1].delta, 0.0, 1e-12);
}

TEST(MetricsTest, PerClassDeltaRespectsMinSupport) {
  std::vector<int> gold = {0, 1};
  auto deltas = PerClassAccuracyDelta(gold, gold, gold, 2,
                                      /*min_support=*/2);
  EXPECT_TRUE(deltas.empty());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter p({"Model", "Acc"});
  p.AddRow({"KGLink", "87.12"});
  p.AddRow({"A", "1"});
  std::string out = p.Render();
  EXPECT_NE(out.find("| Model  | Acc   |"), std::string::npos);
  EXPECT_NE(out.find("| KGLink | 87.12 |"), std::string::npos);
  EXPECT_NE(out.find("| A      | 1     |"), std::string::npos);
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(TablePrinter::Pct(0.87123), "87.12");
  EXPECT_EQ(TablePrinter::Num(3.14159, 3), "3.142");
}

}  // namespace
}  // namespace kglink::eval
