// Sliding-window statistics tests: slot rotation and expiry under a
// virtual clock, percentile estimates validated against an exact sorted
// reference, SLO compliance/burn-rate math across both windows, flight-
// recorder trigger/ring semantics, and the RequestTelemetry exclusive-
// stage arithmetic the serve-path stage-sum invariant relies on.
#include "obs/rolling_window.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/json_util.h"
#include "obs/request_telemetry.h"

namespace kglink::obs {
namespace {

// Deterministic uniform-ish value stream (splitmix64-style).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

RollingWindowOptions TestWindow(int64_t window_us = 10'000'000,
                                int num_slots = 10) {
  RollingWindowOptions o;
  o.window_us = window_us;
  o.num_slots = num_slots;
  return o;
}

TEST(RollingWindowTest, EmptyWindowIsZero) {
  int64_t now = 0;
  RollingWindow w(TestWindow(), [&now] { return now; });
  RollingWindow::Snapshot snap = w.Snap();
  EXPECT_EQ(snap.count, 0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(RollingWindowTest, ValuesExpireAfterWindow) {
  int64_t now = 0;
  RollingWindow w(TestWindow(), [&now] { return now; });
  for (int i = 0; i < 100; ++i) w.Record(500.0);
  EXPECT_EQ(w.Snap().count, 100);
  // Advance past the whole window: everything recorded at t=0 is gone.
  now = 10'000'001;
  EXPECT_EQ(w.Snap().count, 0);
  // New values are visible again.
  w.Record(700.0);
  EXPECT_EQ(w.Snap().count, 1);
}

TEST(RollingWindowTest, PartialExpirySlidesSlotBySlot) {
  int64_t now = 0;
  RollingWindow w(TestWindow(10'000'000, 10), [&now] { return now; });
  w.Record(100.0);    // slot 0
  now = 5'000'000;    // slot 5
  w.Record(200.0);
  EXPECT_EQ(w.Snap().count, 2);
  // At t=9.5s both slots are still inside [t-10s, t].
  now = 9'500'000;
  EXPECT_EQ(w.Snap().count, 2);
  // At t=10.5s slot 0 has rotated out; slot 5 survives.
  now = 10'500'000;
  EXPECT_EQ(w.Snap().count, 1);
  // At t=15.5s everything is out.
  now = 15'500'000;
  EXPECT_EQ(w.Snap().count, 0);
}

TEST(RollingWindowTest, SlotReuseClearsStaleData) {
  int64_t now = 0;
  RollingWindow w(TestWindow(1'000'000, 4), [&now] { return now; });
  w.Record(10.0);
  // Advance exactly one full ring revolution: the new sequence number maps
  // to the same ring slot and must evict the stale epoch's data.
  now = 1'000'000;
  w.Record(20.0);
  RollingWindow::Snapshot snap = w.Snap();
  EXPECT_EQ(snap.count, 1);
  EXPECT_DOUBLE_EQ(snap.sum, 20.0);
}

TEST(RollingWindowTest, PercentilesMatchExactReferenceWithinBucketError) {
  int64_t now = 0;
  RollingWindowOptions o = TestWindow();
  // Fine-grained buckets: factor 1.25 bounds the relative interpolation
  // error of any quantile to one bucket (25%).
  o.buckets = HistogramBuckets::Exponential(1.0, 1.25, 60);
  RollingWindow w(o, [&now] { return now; });

  std::vector<double> exact;
  for (int i = 0; i < 10'000; ++i) {
    // Long-tailed deterministic stream in [1, ~100000].
    double u = static_cast<double>(Mix(static_cast<uint64_t>(i)) % 1'000'000) /
               1'000'000.0;
    double v = std::pow(10.0, 5.0 * u);
    exact.push_back(v);
    w.Record(v);
    now += 500;  // spread across slots, well inside the window
  }
  std::sort(exact.begin(), exact.end());
  RollingWindow::Snapshot snap = w.Snap();
  ASSERT_EQ(snap.count, 10'000);

  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    double est = snap.Quantile(q);
    double ref =
        exact[std::min(exact.size() - 1,
                       static_cast<size_t>(q * static_cast<double>(
                                                   exact.size())))];
    // The estimate must land within one bucket (factor 1.25) of the exact
    // order statistic.
    EXPECT_LE(est, ref * 1.25 * 1.001) << "q=" << q;
    EXPECT_GE(est, ref / 1.25 / 1.001) << "q=" << q;
  }
}

TEST(RollingWindowTest, OverflowQuantileReturnsLargestFiniteBound) {
  int64_t now = 0;
  RollingWindowOptions o = TestWindow();
  o.buckets = HistogramBuckets::Exponential(1.0, 2.0, 4);  // top bound 8
  RollingWindow w(o, [&now] { return now; });
  for (int i = 0; i < 10; ++i) w.Record(1e9);
  EXPECT_DOUBLE_EQ(w.Snap().Quantile(0.5), 8.0);
}

TEST(RollingWindowTest, SnapshotJsonIsValidAndWindowed) {
  int64_t now = 0;
  RollingWindow w(TestWindow(), [&now] { return now; });
  for (int i = 0; i < 50; ++i) w.Record(1000.0);
  std::string json = w.SnapshotJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->NumberOr("count", -1.0), 50.0);
  EXPECT_DOUBLE_EQ(doc->NumberOr("window_s", -1.0), 10.0);
  // After the window passes, the same JSON reports an empty window — the
  // stats are sliding, not cumulative.
  now = 20'000'000;
  auto later = ParseJson(w.SnapshotJson());
  ASSERT_TRUE(later.has_value());
  EXPECT_DOUBLE_EQ(later->NumberOr("count", -1.0), 0.0);
}

TEST(RollingWindowTest, ConcurrentRecordAndSnap) {
  // Real clock here on purpose: exercises the mutex under TSan.
  RollingWindow w(TestWindow());
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&w] {
      for (int i = 0; i < 2'000; ++i) w.Record(static_cast<double>(i));
    });
  }
  int64_t max_seen = 0;
  for (int i = 0; i < 200; ++i) {
    max_seen = std::max(max_seen, w.Snap().count);
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(w.Snap().count, 8'000);
  EXPECT_LE(max_seen, 8'000);
}

TEST(SloMonitorTest, BurnRateAgainstObjective) {
  int64_t now = 0;
  SloOptions o;
  o.target_latency_us = 100;
  o.objective = 0.99;
  o.short_window_us = 10'000'000;
  o.long_window_us = 60'000'000;
  SloMonitor slo(o, [&now] { return now; });

  // 99 compliant + 1 violating request: exactly the provisioned error
  // budget, so burn rate 1.0 in both windows.
  for (int i = 0; i < 99; ++i) slo.Record(50);
  slo.Record(200);
  SloMonitor::Snapshot snap = slo.Snap();
  EXPECT_EQ(snap.short_total, 100);
  EXPECT_EQ(snap.short_violations, 1);
  EXPECT_DOUBLE_EQ(snap.short_compliance, 0.99);
  EXPECT_NEAR(snap.short_burn_rate, 1.0, 1e-9);
  EXPECT_NEAR(snap.long_burn_rate, 1.0, 1e-9);
  EXPECT_FALSE(snap.burning);  // burning requires strictly > 1

  // Ten violations in a row: the short window burns at 10x.
  for (int i = 0; i < 10; ++i) slo.Record(500);
  snap = slo.Snap();
  EXPECT_GT(snap.short_burn_rate, 1.0);
  EXPECT_GT(snap.long_burn_rate, 1.0);
  EXPECT_TRUE(snap.burning);
}

TEST(SloMonitorTest, ShortWindowForgetsLongWindowRemembers) {
  int64_t now = 0;
  SloOptions o;
  o.target_latency_us = 100;
  o.short_window_us = 10'000'000;
  o.long_window_us = 60'000'000;
  SloMonitor slo(o, [&now] { return now; });
  for (int i = 0; i < 20; ++i) slo.Record(500);  // all violations at t=0
  // 15s later the short window has rotated the burst out; the long window
  // still sees it — the classic "page only if both burn" setup.
  now = 15'000'000;
  SloMonitor::Snapshot snap = slo.Snap();
  EXPECT_EQ(snap.short_total, 0);
  EXPECT_DOUBLE_EQ(snap.short_burn_rate, 0.0);
  EXPECT_EQ(snap.long_total, 20);
  EXPECT_GT(snap.long_burn_rate, 1.0);
  EXPECT_FALSE(snap.burning);
}

TEST(SloMonitorTest, IdleReportsFullCompliance) {
  int64_t now = 0;
  SloMonitor slo(SloOptions{}, [&now] { return now; });
  SloMonitor::Snapshot snap = slo.Snap();
  EXPECT_DOUBLE_EQ(snap.short_compliance, 1.0);
  EXPECT_DOUBLE_EQ(snap.short_burn_rate, 0.0);
  EXPECT_FALSE(snap.burning);
}

TEST(SloMonitorTest, SnapshotJsonIsValid) {
  int64_t now = 0;
  SloMonitor slo(SloOptions{}, [&now] { return now; });
  slo.Record(50);
  slo.Record(500'000);
  std::string json = slo.SnapshotJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->NumberOr("target_us", -1.0), 100'000.0);
  const JsonValue* short_window = doc->Find("short");
  ASSERT_NE(short_window, nullptr);
  EXPECT_DOUBLE_EQ(short_window->NumberOr("total", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(short_window->NumberOr("violations", -1.0), 1.0);
}

TEST(FlightRecorderTest, ThresholdAndSampleTriggers) {
  FlightRecorder recorder;  // local instance; Global() untouched
  FlightRecorderOptions o;
  o.threshold_us = 1'000;
  o.sample_every_n = 4;
  recorder.Configure(o);
  EXPECT_STREQ(recorder.Trigger(5'000), "threshold");  // completion 1
  EXPECT_STREQ(recorder.Trigger(10), "");              // 2
  EXPECT_STREQ(recorder.Trigger(10), "");              // 3
  EXPECT_STREQ(recorder.Trigger(10), "sample");        // 4: 1-in-4
  EXPECT_STREQ(recorder.Trigger(999), "");             // 5: under threshold
  recorder.Disable();
  EXPECT_STREQ(recorder.Trigger(1'000'000), "");  // disarmed
}

TEST(FlightRecorderTest, RingDropsOldestBeyondCapacity) {
  FlightRecorder recorder;
  FlightRecorderOptions o;
  o.threshold_us = 1;
  o.capacity = 3;
  recorder.Configure(o);
  for (int i = 0; i < 5; ++i) {
    recorder.Record("{\"n\": " + std::to_string(i) + "}");
  }
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.recorded(), 5);
  EXPECT_EQ(recorder.overwritten(), 2);
  std::vector<std::string> records = recorder.Records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front(), "{\"n\": 2}");  // 0 and 1 dropped
  EXPECT_EQ(records.back(), "{\"n\": 4}");
  // Disable keeps the captured ring dumpable; Configure clears it.
  recorder.Disable();
  EXPECT_EQ(recorder.size(), 3u);
  recorder.Configure(o);
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(FlightRecorderTest, JsonlLinesAreValidJson) {
  FlightRecorder recorder;
  FlightRecorderOptions o;
  o.sample_every_n = 1;
  recorder.Configure(o);
  recorder.Record("{\"a\": 1}");
  recorder.Record("{\"b\": [1, 2]}");
  std::string jsonl = recorder.Jsonl();
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_TRUE(IsValidJson(jsonl.substr(start, end - start)));
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(RequestTelemetryTest, ExclusiveLinkSubtractsNestedStages) {
  RequestTelemetry t;
  t.AddStage(Stage::kLink, 1'000);      // inclusive
  t.AddStage(Stage::kTopK, 300);        // nested in link
  t.AddStage(Stage::kCellCache, 200);   // nested in link
  t.AddStage(Stage::kEncode, 400);
  t.AddStage(Stage::kQueueWait, 50);
  EXPECT_EQ(t.exclusive_stage_us(Stage::kLink), 500u);
  EXPECT_EQ(t.exclusive_stage_us(Stage::kTopK), 300u);
  // Sum of exclusives = queue + inclusive link + encode.
  EXPECT_EQ(t.TotalStageUs(), 50u + 1'000u + 400u);
}

TEST(RequestTelemetryTest, ExclusiveLinkClampsAtZero) {
  RequestTelemetry t;
  // Timer-granularity artifact: nested floors can exceed the inclusive
  // floor by a microsecond — must clamp, not wrap.
  t.AddStage(Stage::kLink, 2);
  t.AddStage(Stage::kTopK, 3);
  EXPECT_EQ(t.exclusive_stage_us(Stage::kLink), 0u);
}

TEST(RequestTelemetryTest, JsonCarriesStagesAndEvents) {
  RequestTelemetry t;
  t.AddStage(Stage::kLink, 900);
  t.AddStage(Stage::kTopK, 400);
  t.retries = 2;
  t.cache_hits = 7;
  std::string json = t.Json();
  EXPECT_TRUE(IsValidJson(json)) << json;
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* stages = doc->Find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_DOUBLE_EQ(stages->NumberOr("link_us", -1.0), 500.0);  // exclusive
  EXPECT_DOUBLE_EQ(stages->NumberOr("topk_us", -1.0), 400.0);
  EXPECT_DOUBLE_EQ(doc->NumberOr("retries", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(doc->NumberOr("cache_hits", -1.0), 7.0);
  EXPECT_DOUBLE_EQ(doc->NumberOr("stage_total_us", -1.0), 900.0);
}

}  // namespace
}  // namespace kglink::obs
