// Part-1 pipeline tests: BM25 cell linking, Eq. 3 pruning, Eq. 4-6 scores,
// row filtering, candidate-type generation with the PERSON/DATE filter,
// and feature sequences — on a hand-built KG where the right answers are
// known exactly.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "linker/candidate_types.h"
#include "linker/entity_linker.h"
#include "linker/feature_sequence.h"
#include "linker/pipeline.h"
#include "linker/row_filter.h"
#include "robust/fault_injector.h"
#include "search/search_engine.h"

namespace kglink::linker {
namespace {

// Fixture world: two musicians with albums (Fig. 5's scenario).
//   peter "Peter Steele" --instance of--> human(person type, but entity
//     flagged person)  --performer of--> rust
//   rust "Rust" --instance of--> album_type
//   decoy "Rust" (no edges) -- linking ambiguity
//   mia "Mia Torv" --performer of--> echo "Echo"
class LinkerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    human_ = kg_.AddEntity({"T1", "human", {}, "", true, false, false});
    musician_ = kg_.AddEntity({"T2", "musician", {}, "", true, false, false});
    album_type_ = kg_.AddEntity({"T3", "album", {}, "", true, false, false});
    peter_ = kg_.AddEntity(
        {"Q1", "Peter Steele", {}, "", false, true, false});
    rust_ = kg_.AddEntity({"Q2", "Rust", {}, "", false, false, false});
    decoy_rust_ = kg_.AddEntity({"Q3", "Rust", {}, "", false, false, false});
    mia_ = kg_.AddEntity({"Q4", "Mia Torv", {}, "", false, true, false});
    echo_ = kg_.AddEntity({"Q5", "Echo", {}, "", false, false, false});
    performer_ = kg_.AddPredicate("performer");
    kg_.AddTriple(peter_, kg::KnowledgeGraph::kInstanceOf, human_);
    kg_.AddTriple(peter_, kg::KnowledgeGraph::kInstanceOf, musician_);
    kg_.AddTriple(mia_, kg::KnowledgeGraph::kInstanceOf, musician_);
    kg_.AddTriple(rust_, kg::KnowledgeGraph::kInstanceOf, album_type_);
    kg_.AddTriple(echo_, kg::KnowledgeGraph::kInstanceOf, album_type_);
    kg_.AddTriple(rust_, performer_, peter_);
    kg_.AddTriple(echo_, performer_, mia_);
    engine_ = std::make_unique<search::SearchEngine>(
        search::IndexKnowledgeGraph(kg_));
    // Fig. 5 table: album | artist.
    tbl_ = table::Table::FromStrings(
        "fig5", {{"Rust", "Peter Steele"}, {"Echo", "Mia Torv"}});
  }

  LinkerConfig config_;
  kg::KnowledgeGraph kg_;
  kg::EntityId human_, musician_, album_type_, peter_, rust_, decoy_rust_,
      mia_, echo_;
  kg::PredicateId performer_;
  std::unique_ptr<search::SearchEngine> engine_;
  table::Table tbl_;
};

TEST_F(LinkerFixture, NumberAndDateCellsGetZeroScore) {
  EntityLinker linker(&kg_, engine_.get(), config_);
  table::Cell number{"1993", table::CellKind::kNumber, 1993};
  CellLinks links = linker.LinkCell(number);
  EXPECT_FALSE(links.linkable);
  EXPECT_TRUE(links.retrieved.empty());
  EXPECT_EQ(links.score, 0.0);
  table::Cell date{"1993-05-01", table::CellKind::kDate, 0};
  EXPECT_FALSE(linker.LinkCell(date).linkable);
}

TEST_F(LinkerFixture, LinkCellRetrievesBothRustEntities) {
  EntityLinker linker(&kg_, engine_.get(), config_);
  table::Cell cell{"Rust", table::CellKind::kString, 0};
  CellLinks links = linker.LinkCell(cell);
  ASSERT_EQ(links.retrieved.size(), 2u);
  std::set<kg::EntityId> ids = {links.retrieved[0].entity,
                                links.retrieved[1].entity};
  EXPECT_TRUE(ids.count(rust_));
  EXPECT_TRUE(ids.count(decoy_rust_));
}

TEST_F(LinkerFixture, OverlapPruningDropsTheDecoy) {
  // Fig. 5's red link: Rust--performer--Peter Steele means only the real
  // Rust survives pruning, because the decoy has no neighbours in the
  // other column's retrieved set.
  EntityLinker linker(&kg_, engine_.get(), config_);
  RowLinks row = linker.LinkRow(tbl_, 0);
  const CellLinks& album_cell = row.cells[0];
  ASSERT_EQ(album_cell.pruned.size(), 1u);
  EXPECT_EQ(album_cell.pruned[0].entity, rust_);
  EXPECT_GT(album_cell.pruned[0].overlap_score, 0.0);
  const CellLinks& artist_cell = row.cells[1];
  ASSERT_EQ(artist_cell.pruned.size(), 1u);
  EXPECT_EQ(artist_cell.pruned[0].entity, peter_);
  // Row score = sum of max pruned linking scores (Eq. 4-5).
  EXPECT_NEAR(row.row_score, album_cell.score + artist_cell.score, 1e-9);
  EXPECT_GT(row.row_score, 0.0);
}

TEST_F(LinkerFixture, RowFilterOrdersByScore) {
  LinkerConfig config;
  config.top_k_rows = 2;
  std::vector<double> scores = {0.5, 3.0, 1.0, 2.0};
  auto kept = FilterRows(scores, config);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 1);
  EXPECT_EQ(kept[1], 3);
  config.row_filter_mode = RowFilterMode::kOriginalOrder;
  kept = FilterRows(scores, config);
  EXPECT_EQ(kept[0], 0);
  EXPECT_EQ(kept[1], 1);
}

TEST_F(LinkerFixture, RowFilterAllModeCaps) {
  LinkerConfig config;
  config.top_k_rows = 0;  // "all"
  config.max_rows_cap = 3;
  std::vector<double> scores = {1, 2, 3, 4, 5};
  EXPECT_EQ(FilterRows(scores, config).size(), 3u);
}

TEST_F(LinkerFixture, CandidateTypesVoteAcrossRows) {
  EntityLinker linker(&kg_, engine_.get(), config_);
  std::vector<RowLinks> rows = {linker.LinkRow(tbl_, 0),
                                linker.LinkRow(tbl_, 1)};
  // Artist column: 'musician' is a one-hop neighbour (instance of) of both
  // Peter and Mia -> corroborated across 2 rows.
  auto artist_types = GenerateCandidateTypes(kg_, rows, 1, config_);
  ASSERT_FALSE(artist_types.empty());
  EXPECT_EQ(artist_types[0].entity, musician_);
  // Album column: 'album' type from both Rust and Echo.
  auto album_types = GenerateCandidateTypes(kg_, rows, 0, config_);
  ASSERT_FALSE(album_types.empty());
  EXPECT_EQ(album_types[0].entity, album_type_);
}

TEST_F(LinkerFixture, PersonEntitiesFilteredFromCandidateTypes) {
  EntityLinker linker(&kg_, engine_.get(), config_);
  std::vector<RowLinks> rows = {linker.LinkRow(tbl_, 0),
                                linker.LinkRow(tbl_, 1)};
  for (int col = 0; col < 2; ++col) {
    for (const auto& ct : GenerateCandidateTypes(kg_, rows, col, config_)) {
      EXPECT_FALSE(kg_.entity(ct.entity).is_person)
          << kg_.entity(ct.entity).label;
    }
  }
}

TEST_F(LinkerFixture, SingleRowYieldsNoCandidateTypes) {
  // Eq. 8's corroboration requirement: one row cannot vote alone.
  EntityLinker linker(&kg_, engine_.get(), config_);
  std::vector<RowLinks> rows = {linker.LinkRow(tbl_, 0)};
  EXPECT_TRUE(GenerateCandidateTypes(kg_, rows, 0, config_).empty());
}

TEST_F(LinkerFixture, FeatureSequenceSerializesNeighbourhood) {
  std::string s = SerializeFeatureSequence(kg_, peter_, config_);
  EXPECT_NE(s.find("Peter Steele"), std::string::npos);
  EXPECT_NE(s.find("instance of"), std::string::npos);
  EXPECT_NE(s.find("musician"), std::string::npos);
  EXPECT_NE(s.find("performer"), std::string::npos);
}

TEST_F(LinkerFixture, FeatureSequenceRespectsEdgeBudget) {
  LinkerConfig config;
  config.max_feature_edges = 1;
  std::string s = SerializeFeatureSequence(kg_, peter_, config);
  // Only one " | " separator section.
  size_t first = s.find(" | ");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(s.find(" | ", first + 3), std::string::npos);
}

TEST_F(LinkerFixture, SelectFeatureEntityFallsBackToRetrieved) {
  // A single-column table: pruning removes everything (no other columns),
  // but retrieval still supplies the feature entity.
  table::Table single = table::Table::FromStrings("s", {{"Rust"}});
  EntityLinker linker(&kg_, engine_.get(), config_);
  std::vector<RowLinks> rows = {linker.LinkRow(single, 0)};
  EXPECT_TRUE(rows[0].cells[0].pruned.empty());
  kg::EntityId id = SelectFeatureEntity(rows, 0);
  EXPECT_NE(id, kg::kInvalidEntity);
}

TEST_F(LinkerFixture, PipelineEndToEnd) {
  KgPipeline pipeline(&kg_, engine_.get(), config_);
  ProcessedTable pt = pipeline.Process(tbl_);
  EXPECT_EQ(pt.filtered.num_rows(), 2);
  EXPECT_EQ(pt.columns.size(), 2u);
  EXPECT_FALSE(pt.columns[0].is_numeric);
  ASSERT_FALSE(pt.columns[1].candidate_types.empty());
  EXPECT_EQ(pt.columns[1].candidate_type_labels[0], "musician");
  EXPECT_TRUE(pt.columns[0].has_feature);
  EXPECT_TRUE(pt.columns[1].has_feature);
}

TEST_F(LinkerFixture, PipelineNumericColumnGetsStatsNotLinks) {
  table::Table t = table::Table::FromStrings(
      "nums", {{"Rust", "10"}, {"Echo", "20"}, {"Rust", "30"}});
  KgPipeline pipeline(&kg_, engine_.get(), config_);
  ProcessedTable pt = pipeline.Process(t);
  ASSERT_EQ(pt.columns.size(), 2u);
  EXPECT_TRUE(pt.columns[1].is_numeric);
  EXPECT_FALSE(pt.columns[1].has_feature);
  EXPECT_TRUE(pt.columns[1].candidate_types.empty());
  EXPECT_DOUBLE_EQ(pt.columns[1].stats.mean, 20.0);
  EXPECT_DOUBLE_EQ(pt.columns[1].stats.median, 20.0);
}

TEST_F(LinkerFixture, PipelineTopKLimitsRows) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({"Rust", "Peter Steele"});
  table::Table t = table::Table::FromStrings("big", rows);
  LinkerConfig config;
  config.top_k_rows = 4;
  KgPipeline pipeline(&kg_, engine_.get(), config);
  ProcessedTable pt = pipeline.Process(t);
  EXPECT_EQ(pt.filtered.num_rows(), 4);
  EXPECT_EQ(pt.kept_rows.size(), 4u);
  EXPECT_EQ(pt.row_links.size(), 4u);
}

TEST_F(LinkerFixture, UnlinkableTableHasNoKgInfo) {
  table::Table t = table::Table::FromStrings(
      "none", {{"Zzyx Qwfp", "Vbnm Hjkl"}, {"Qqq Www", "Rrr Ttt"}});
  KgPipeline pipeline(&kg_, engine_.get(), config_);
  ProcessedTable pt = pipeline.Process(t);
  for (const auto& col : pt.columns) {
    EXPECT_TRUE(col.candidate_types.empty());
    EXPECT_FALSE(col.has_feature);
  }
}

TEST_F(LinkerFixture, DegradedLinkRowIsPaddedToFullWidth) {
  // Regression: a context that degrades mid-row used to return a RowLinks
  // with fewer cells than the table has columns, and
  // GenerateCandidateTypes indexed cells[col] out of bounds. With every
  // search.topk attempt failing, the context degrades at the first cell;
  // the row must still span all columns, padded unlinkable.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0", 42)
                  .ok());
  EntityLinker linker(&kg_, engine_.get(), config_);
  robust::TableOpContext ctx(config_.retry, config_.fault_budget,
                             /*jitter_seed=*/1);
  RowLinks row = linker.LinkRow(tbl_, 0);
  RowLinks degraded = linker.LinkRow(tbl_, 0, &ctx);
  robust::FaultInjector::Global().Disable();
  ASSERT_TRUE(ctx.degraded());
  ASSERT_EQ(degraded.cells.size(), static_cast<size_t>(tbl_.num_cols()));
  for (const CellLinks& cell : degraded.cells) {
    EXPECT_TRUE(cell.retrieved.empty());
    EXPECT_TRUE(cell.pruned.empty());
  }
  // Downstream consumers index cells[col] per column: the padded row must
  // be safe for every column (this crashed / was UB before the fix).
  std::vector<RowLinks> rows = {degraded, row};
  for (int c = 0; c < tbl_.num_cols(); ++c) {
    auto types = GenerateCandidateTypes(kg_, rows, c, config_);
    (void)types;
  }
}

TEST_F(LinkerFixture, CandidateTypesTolerateShortRows) {
  // Belt-and-braces for the same bug: even a hand-built short row (as a
  // hypothetical future caller might produce) must not read out of
  // bounds — missing cells count as unlinked.
  EntityLinker linker(&kg_, engine_.get(), config_);
  RowLinks full = linker.LinkRow(tbl_, 0);
  RowLinks short_row;
  short_row.cells.resize(1);
  // Column 1 is past the short row's width; column 0 still aggregates the
  // two full rows (two distinct supporting rows, as Eq. 8 requires).
  std::vector<RowLinks> rows = {short_row, full, full};
  auto artist_types = GenerateCandidateTypes(kg_, rows, /*col=*/1, config_);
  EXPECT_FALSE(artist_types.empty());
  auto album_types = GenerateCandidateTypes(kg_, rows, /*col=*/0, config_);
  ASSERT_FALSE(album_types.empty());
  EXPECT_EQ(album_types[0].entity, album_type_);
}

TEST_F(LinkerFixture, NonAsciiLabelsLinkEndToEnd) {
  // Regression for the ASCII-only tokenizer: accented and CJK labels used
  // to tokenize to nothing, making their cells silently unlinkable.
  kg::KnowledgeGraph kg;
  kg::EntityId city_type =
      kg.AddEntity({"T1", "city", {}, "", true, false, false});
  kg::EntityId koeln =
      kg.AddEntity({"Q1", "Köln", {"Cologne"}, "", false, false, false});
  kg::EntityId tokyo =
      kg.AddEntity({"Q2", "東京", {"Tokyo"}, "", false, false, false});
  kg::EntityId rhine =
      kg.AddEntity({"Q3", "Rhein", {}, "", false, false, false});
  kg::EntityId sumida =
      kg.AddEntity({"Q4", "隅田川", {"Sumida"}, "", false, false, false});
  kg::PredicateId river = kg.AddPredicate("river");
  kg.AddTriple(koeln, kg::KnowledgeGraph::kInstanceOf, city_type);
  kg.AddTriple(tokyo, kg::KnowledgeGraph::kInstanceOf, city_type);
  kg.AddTriple(koeln, river, rhine);
  kg.AddTriple(tokyo, river, sumida);
  search::SearchEngine engine = search::IndexKnowledgeGraph(kg);

  EntityLinker linker(&kg, &engine, config_);
  table::Cell koeln_cell{"Köln", table::CellKind::kString, 0};
  CellLinks links = linker.LinkCell(koeln_cell);
  ASSERT_FALSE(links.retrieved.empty());
  EXPECT_EQ(links.retrieved[0].entity, koeln);

  // Whole-row linking with the overlap pruning, all through non-ASCII
  // mentions: city column | river column.
  table::Table t = table::Table::FromStrings(
      "cities", {{"Köln", "Rhein"}, {"東京", "隅田川"}});
  RowLinks row0 = linker.LinkRow(t, 0);
  ASSERT_EQ(row0.cells.size(), 2u);
  ASSERT_FALSE(row0.cells[0].pruned.empty());
  EXPECT_EQ(row0.cells[0].pruned[0].entity, koeln);
  RowLinks row1 = linker.LinkRow(t, 1);
  ASSERT_FALSE(row1.cells[0].pruned.empty());
  EXPECT_EQ(row1.cells[0].pruned[0].entity, tokyo);
}

}  // namespace
}  // namespace kglink::linker
