// Chaos integration test (the capstone): the full Fit + Predict stack runs
// under injected faults — BM25 retrieval failures plus poisoned training
// batches — without crashing, with bounded accuracy loss against the
// fault-free baseline, and with the degradation counters visible in the
// metrics snapshot.
#include <gtest/gtest.h>

#include <string>

#include "core/annotator.h"
#include "data/corpus_gen.h"
#include "data/world.h"
#include "obs/metrics.h"
#include "robust/fault_injector.h"
#include "search/search_engine.h"

namespace kglink {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::WorldConfig wc;
    wc.scale = 0.25;
    world_ = new data::World(data::GenerateWorld(wc));
    engine_ = new search::SearchEngine(
        search::IndexKnowledgeGraph(world_->kg));
    table::Corpus corpus = data::GenerateSemTabCorpus(
        *world_, data::CorpusOptions::SemTabDefaults(40));
    Rng rng(5);
    split_ = new table::SplitCorpus(
        table::StratifiedSplit(corpus, 0.7, 0.1, rng));
  }
  static void TearDownTestSuite() {
    delete split_;
    delete engine_;
    delete world_;
  }

  void TearDown() override { robust::FaultInjector::Global().Disable(); }

  static core::KgLinkOptions FastOptions(uint64_t seed = 99) {
    core::KgLinkOptions o;
    o.epochs = 4;
    o.encoder.dim = 24;
    o.encoder.num_heads = 2;
    o.encoder.num_layers = 1;
    o.encoder.ffn_dim = 32;
    o.serializer.max_seq_len = 96;
    o.linker.top_k_rows = 8;
    o.seed = seed;
    return o;
  }

  // Trains and evaluates one annotator under whatever faults are active.
  static double TrainAndEvaluate(const core::KgLinkOptions& options) {
    core::KgLinkAnnotator annotator(&world_->kg, engine_, options);
    annotator.Fit(split_->train, split_->valid);
    return annotator.Evaluate(split_->test).accuracy;
  }

  static data::World* world_;
  static search::SearchEngine* engine_;
  static table::SplitCorpus* split_;
};
data::World* ChaosTest::world_ = nullptr;
search::SearchEngine* ChaosTest::engine_ = nullptr;
table::SplitCorpus* ChaosTest::split_ = nullptr;

TEST_F(ChaosTest, SurvivesSearchFaultsAndPoisonedBatches) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& degraded = reg.GetCounter("robust.degraded_tables");
  obs::Counter& skipped = reg.GetCounter("train.skipped_batches");

  // Fault-free baseline. 8 epochs (the production default) so the model is
  // converged enough that losing a batch to poisoning is absorbable.
  robust::FaultInjector::Global().Disable();
  core::KgLinkOptions options = FastOptions(7);
  options.epochs = 8;
  double clean_acc = TrainAndEvaluate(options);

  // Chaos run: 10% of BM25 retrievals fail (retried under the policy, then
  // charged to the per-table budget) and ~1% of training tables come back
  // with a poisoned NaN loss. Deterministic per seed, so reproducible.
  int64_t degraded_before = degraded.value();
  int64_t skipped_before = skipped.value();
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:0.1,train.batch:0.01", 42)
                  .ok());
  double chaos_acc = TrainAndEvaluate(options);
  robust::FaultInjector::Global().Disable();

  // Graceful degradation happened (some tables fell back to PLM-only and
  // at least one poisoned batch was skipped) and was counted.
  EXPECT_GT(degraded.value(), degraded_before);
  EXPECT_GT(skipped.value(), skipped_before);

  // Bounded accuracy loss: within 5 points of the fault-free run.
  EXPECT_GE(chaos_acc, clean_acc - 0.05)
      << "clean=" << clean_acc << " chaos=" << chaos_acc;

  // The degradation counters are visible in the exported snapshot.
  std::string snapshot = reg.SnapshotJson();
  EXPECT_NE(snapshot.find("\"robust.degraded_tables\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"train.skipped_batches\""), std::string::npos);
}

TEST_F(ChaosTest, ChaosRunIsDeterministicPerSeed) {
  // Two identically seeded chaos runs produce identical accuracy and trip
  // counts: fault injection must not introduce nondeterminism.
  double accs[2];
  int64_t trips[2];
  for (int run = 0; run < 2; ++run) {
    ASSERT_TRUE(robust::FaultInjector::Global()
                    .ConfigureFromSpec("search.topk:0.1", 42)
                    .ok());
    accs[run] = TrainAndEvaluate(FastOptions(7));
    trips[run] = robust::FaultInjector::Global().trip_count(
        robust::FaultSite::kSearchTopK);
    robust::FaultInjector::Global().Disable();
  }
  EXPECT_EQ(accs[0], accs[1]);
  EXPECT_GT(trips[0], 0);
  EXPECT_EQ(trips[0], trips[1]);
}

TEST_F(ChaosTest, LatencyFaultsSlowButDoNotDegrade) {
  // Pure latency faults: every retrieval is delayed, none fails — the
  // output must match the fault-free pipeline exactly.
  linker::KgPipeline pipeline(&world_->kg, engine_, {});
  const table::Table& t = split_->test.tables[0].table;
  linker::ProcessedTable clean = pipeline.Process(t);

  robust::FaultInjector::Global().Configure(
      {{robust::FaultSite::kSearchTopK, {1.0, 50}}}, 3);
  linker::ProcessedTable slow = pipeline.Process(t);
  robust::FaultInjector::Global().Disable();

  EXPECT_FALSE(slow.degraded);
  ASSERT_EQ(slow.columns.size(), clean.columns.size());
  for (size_t c = 0; c < clean.columns.size(); ++c) {
    EXPECT_EQ(slow.columns[c].candidate_type_labels,
              clean.columns[c].candidate_type_labels);
    EXPECT_EQ(slow.columns[c].feature_sequence,
              clean.columns[c].feature_sequence);
  }
}

}  // namespace
}  // namespace kglink
