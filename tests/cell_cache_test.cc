// CellLinkCache unit tests (LRU semantics, stats, metrics) plus its
// integration with EntityLinker: repeated cell texts hit the cache with
// identical results, expired requests neither read nor poison it, and the
// concurrent test is part of the TSan suite (scripts/check.sh --tsan).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kg/knowledge_graph.h"
#include "linker/entity_linker.h"
#include "obs/metrics.h"
#include "robust/fault_injector.h"
#include "search/cell_link_cache.h"
#include "search/search_engine.h"
#include "table/table.h"
#include "util/deadline.h"

namespace kglink {
namespace {

using search::CellLinkCache;
using search::SearchResult;

std::vector<SearchResult> Results(int32_t doc_id) {
  return {{doc_id, static_cast<double>(doc_id) * 0.5}};
}

TEST(CellLinkCacheTest, GetReturnsWhatPutStored) {
  CellLinkCache cache(/*capacity=*/8, /*num_shards=*/1);
  std::vector<SearchResult> out;
  EXPECT_FALSE(cache.Get("rust", &out));
  cache.Put("rust", Results(7));
  ASSERT_TRUE(cache.Get("rust", &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].doc_id, 7);
  EXPECT_EQ(out[0].score, 3.5);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CellLinkCacheTest, LruEvictsLeastRecentlyUsed) {
  // One shard so the eviction order is exact.
  CellLinkCache cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Put("a", Results(1));
  cache.Put("b", Results(2));
  cache.Put("c", Results(3));
  std::vector<SearchResult> out;
  // Touch "a" so "b" becomes the LRU entry.
  ASSERT_TRUE(cache.Get("a", &out));
  cache.Put("d", Results(4));
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_TRUE(cache.Get("c", &out));
  EXPECT_TRUE(cache.Get("d", &out));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(CellLinkCacheTest, PutRefreshesExistingKey) {
  CellLinkCache cache(4, 1);
  cache.Put("k", Results(1));
  cache.Put("k", Results(9));
  std::vector<SearchResult> out;
  ASSERT_TRUE(cache.Get("k", &out));
  EXPECT_EQ(out[0].doc_id, 9);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0);
}

TEST(CellLinkCacheTest, EmptyResultVectorsAreCacheable) {
  // A *completed* TopK that found nothing is a legitimate value (the cell
  // is unlinkable); only deadline-truncated results are barred, by the
  // caller (EntityLinker skips Put on expiry).
  CellLinkCache cache(4, 1);
  cache.Put("no-match", {});
  std::vector<SearchResult> out = Results(3);
  ASSERT_TRUE(cache.Get("no-match", &out));
  EXPECT_TRUE(out.empty());
}

TEST(CellLinkCacheTest, CountersExportedToGlobalMetrics) {
  auto& reg = obs::MetricsRegistry::Global();
  int64_t hits0 = reg.GetCounter("search.cache.hits").value();
  int64_t misses0 = reg.GetCounter("search.cache.misses").value();
  int64_t evict0 = reg.GetCounter("search.cache.evictions").value();
  CellLinkCache cache(2, 1);
  std::vector<SearchResult> out;
  cache.Get("x", &out);              // miss
  cache.Put("x", Results(1));
  cache.Get("x", &out);              // hit
  cache.Put("y", Results(2));
  cache.Put("z", Results(3));        // evicts "x"
  EXPECT_EQ(reg.GetCounter("search.cache.hits").value() - hits0, 1);
  EXPECT_EQ(reg.GetCounter("search.cache.misses").value() - misses0, 1);
  EXPECT_EQ(reg.GetCounter("search.cache.evictions").value() - evict0, 1);
}

TEST(CellLinkCacheTest, TinyCapacityStillHoldsOneEntryPerShard) {
  // capacity < shards: the shard count shrinks rather than allotting zero
  // entries to a shard.
  CellLinkCache cache(/*capacity=*/2, /*num_shards=*/8);
  cache.Put("a", Results(1));
  std::vector<SearchResult> out;
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_GE(cache.capacity(), 2u);
}

// The TSan-covered test: concurrent readers/writers over a shared key
// space. Any hit must carry the value that key was stored with — the
// sharded locking must never tear an entry or cross keys.
TEST(CellLinkCacheTest, ConcurrentGetPutKeepsEntriesConsistent) {
  CellLinkCache cache(/*capacity=*/64, /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  constexpr int kKeys = 96;  // > capacity, so evictions run concurrently too
  std::vector<std::thread> workers;
  std::vector<int> bad_hits(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &bad_hits, t] {
      std::vector<SearchResult> out;
      for (int i = 0; i < kOps; ++i) {
        int key_id = (i * 31 + t * 7) % kKeys;
        std::string key = "cell-" + std::to_string(key_id);
        if (i % 3 == 0) {
          cache.Put(key, Results(key_id));
        } else if (cache.Get(key, &out)) {
          if (out.size() != 1 || out[0].doc_id != key_id) ++bad_hits[t];
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(bad_hits[t], 0) << t;
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.hits(), 0);
}

// --- EntityLinker integration ------------------------------------------

class LinkerCacheFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rust_ = kg_.AddEntity({"Q1", "Rust", {}, "", false, false, false});
    echo_ = kg_.AddEntity({"Q2", "Echo", {}, "", false, false, false});
    engine_ = std::make_unique<search::SearchEngine>(
        search::IndexKnowledgeGraph(kg_));
  }
  void TearDown() override { robust::FaultInjector::Global().Disable(); }

  kg::KnowledgeGraph kg_;
  kg::EntityId rust_, echo_;
  std::unique_ptr<search::SearchEngine> engine_;
};

TEST_F(LinkerCacheFixture, RepeatedCellTextsHitTheCache) {
  linker::LinkerConfig config;
  config.cell_cache_capacity = 128;
  linker::EntityLinker linker(&kg_, engine_.get(), config);
  ASSERT_NE(linker.cell_cache(), nullptr);
  table::Cell cell{"Rust", table::CellKind::kString, 0};
  linker::CellLinks first = linker.LinkCell(cell);
  linker::CellLinks second = linker.LinkCell(cell);
  EXPECT_EQ(linker.cell_cache()->misses(), 1);
  EXPECT_EQ(linker.cell_cache()->hits(), 1);
  ASSERT_EQ(first.retrieved.size(), second.retrieved.size());
  for (size_t i = 0; i < first.retrieved.size(); ++i) {
    EXPECT_EQ(first.retrieved[i].entity, second.retrieved[i].entity);
    EXPECT_EQ(first.retrieved[i].linking_score,
              second.retrieved[i].linking_score);
  }
  ASSERT_FALSE(first.retrieved.empty());
  EXPECT_EQ(first.retrieved[0].entity, rust_);
}

TEST_F(LinkerCacheFixture, ZeroCapacityDisablesTheCache) {
  linker::LinkerConfig config;
  config.cell_cache_capacity = 0;
  linker::EntityLinker linker(&kg_, engine_.get(), config);
  EXPECT_EQ(linker.cell_cache(), nullptr);
  table::Cell cell{"Rust", table::CellKind::kString, 0};
  // Still links correctly, straight through the engine.
  EXPECT_FALSE(linker.LinkCell(cell).retrieved.empty());
}

TEST_F(LinkerCacheFixture, ExpiredRequestNeitherReadsNorPoisonsCache) {
  linker::LinkerConfig config;
  config.cell_cache_capacity = 128;
  linker::EntityLinker linker(&kg_, engine_.get(), config);
  table::Cell cell{"Rust", table::CellKind::kString, 0};

  RequestContext expired;
  expired.deadline = Deadline::Expired();
  robust::TableOpContext ctx(config.retry, config.fault_budget,
                             /*jitter_seed=*/1, &expired);
  linker::CellLinks degraded = linker.LinkCell(cell, &ctx);
  EXPECT_TRUE(degraded.retrieved.empty());
  // Nothing was stored: the truncated result must not poison later
  // lookups of the same cell text.
  EXPECT_EQ(linker.cell_cache()->size(), 0u);

  linker::CellLinks fresh = linker.LinkCell(cell);
  ASSERT_FALSE(fresh.retrieved.empty());
  EXPECT_EQ(fresh.retrieved[0].entity, rust_);
}

TEST_F(LinkerCacheFixture, ExpiredRequestNeverGetsACachedResult) {
  linker::LinkerConfig config;
  config.cell_cache_capacity = 128;
  linker::EntityLinker linker(&kg_, engine_.get(), config);
  table::Cell cell{"Rust", table::CellKind::kString, 0};
  // Warm the cache with the real result.
  ASSERT_FALSE(linker.LinkCell(cell).retrieved.empty());
  ASSERT_EQ(linker.cell_cache()->size(), 1u);

  RequestContext expired;
  expired.deadline = Deadline::Expired();
  robust::TableOpContext ctx(config.retry, config.fault_budget,
                             /*jitter_seed=*/1, &expired);
  // The warm entry must not leak to an expired request — it degrades like
  // any other deadline miss instead of returning stale-but-fast data the
  // serving contract says it must not produce.
  linker::CellLinks got = linker.LinkCell(cell, &ctx);
  EXPECT_TRUE(got.retrieved.empty());
  EXPECT_EQ(linker.cell_cache()->hits(), 0);
}

TEST_F(LinkerCacheFixture, CacheHitsAreIndependentOfFaultDraws) {
  // The fault gate runs before the cache lookup, so the injected-fault
  // draw sequence for a fixed seed is identical whether or not the cache
  // is warm — chaos runs stay deterministic per seed. Same seed, two
  // linkers (cold vs warm cache): identical linkable/unlinkable pattern.
  ASSERT_TRUE(robust::FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:0.5", 42)
                  .ok());
  table::Cell cell{"Rust", table::CellKind::kString, 0};
  auto run = [&](bool warm) {
    linker::LinkerConfig config;
    config.cell_cache_capacity = 128;
    linker::EntityLinker linker(&kg_, engine_.get(), config);
    if (warm) linker.LinkCell(cell);  // no ctx: no fault draw, cache warm
    RequestContext rc;
    rc.stream_key = 7;
    robust::TableOpContext ctx(config.retry, config.fault_budget,
                               /*jitter_seed=*/3, &rc);
    std::vector<bool> linkable;
    for (int i = 0; i < 16; ++i) {
      linkable.push_back(linker.LinkCell(cell, &ctx).linkable);
    }
    return linkable;
  };
  EXPECT_EQ(run(/*warm=*/false), run(/*warm=*/true));
}

}  // namespace
}  // namespace kglink
