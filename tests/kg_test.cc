// KnowledgeGraph tests: construction, lookups, neighbourhoods, type
// hierarchy closure, persistence.
#include "kg/knowledge_graph.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace kglink::kg {
namespace {

// A small fixture graph:
//   human <- athlete <- basketball player (subclass chain)
//   lebron: instance of basketball player, member of lakers, born in akron
//   lakers: instance of team
class KgFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    human_ = kg_.AddEntity({"Q1", "human", {}, "", true, false, false});
    athlete_ = kg_.AddEntity({"Q2", "athlete", {}, "", true, false, false});
    bball_ = kg_.AddEntity(
        {"Q3", "basketball player", {}, "", true, false, false});
    team_type_ = kg_.AddEntity({"Q4", "team", {}, "", true, false, false});
    lebron_ = kg_.AddEntity({"Q5",
                             "LeBron James",
                             {"L. James", "King James"},
                             "a player",
                             false,
                             true,
                             false});
    lakers_ = kg_.AddEntity({"Q6", "Lakers", {}, "", false, false, false});
    akron_ = kg_.AddEntity({"Q7", "Akron", {}, "", false, false, false});
    member_of_ = kg_.AddPredicate("member of sports team");
    born_in_ = kg_.AddPredicate("place of birth");
    kg_.AddTriple(athlete_, KnowledgeGraph::kSubclassOf, human_);
    kg_.AddTriple(bball_, KnowledgeGraph::kSubclassOf, athlete_);
    kg_.AddTriple(lebron_, KnowledgeGraph::kInstanceOf, bball_);
    kg_.AddTriple(lakers_, KnowledgeGraph::kInstanceOf, team_type_);
    kg_.AddTriple(lebron_, member_of_, lakers_);
    kg_.AddTriple(lebron_, born_in_, akron_);
  }

  KnowledgeGraph kg_;
  EntityId human_, athlete_, bball_, team_type_, lebron_, lakers_, akron_;
  PredicateId member_of_, born_in_;
};

TEST_F(KgFixture, BasicCounts) {
  EXPECT_EQ(kg_.num_entities(), 7);
  EXPECT_EQ(kg_.num_triples(), 6);
  EXPECT_EQ(kg_.num_predicates(), 4);  // 2 built-in + 2 custom
}

TEST_F(KgFixture, LookupByQidAndLabel) {
  EXPECT_EQ(kg_.FindByQid("Q5"), lebron_);
  EXPECT_EQ(kg_.FindByQid("Q99"), kInvalidEntity);
  auto ids = kg_.FindByLabel("LeBron James");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], lebron_);
  EXPECT_TRUE(kg_.FindByLabel("Nobody").empty());
}

TEST_F(KgFixture, EdgesAreBidirectional) {
  bool found_forward = false;
  for (const Edge& e : kg_.Edges(lebron_)) {
    if (e.predicate == member_of_ && e.target == lakers_ && e.forward) {
      found_forward = true;
    }
  }
  EXPECT_TRUE(found_forward);
  bool found_reverse = false;
  for (const Edge& e : kg_.Edges(lakers_)) {
    if (e.predicate == member_of_ && e.target == lebron_ && !e.forward) {
      found_reverse = true;
    }
  }
  EXPECT_TRUE(found_reverse);
}

TEST_F(KgFixture, NeighborSetIsSortedUniqueBothDirections) {
  const auto& nbrs = kg_.NeighborSet(lebron_);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), lakers_));
  EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), akron_));
  EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), bball_));
  EXPECT_FALSE(std::binary_search(nbrs.begin(), nbrs.end(), human_));
  // Reverse direction: the type entity sees its instances.
  EXPECT_TRUE(kg_.IsNeighbor(bball_, lebron_));
}

TEST_F(KgFixture, NeighborCacheInvalidatedByMutation) {
  EXPECT_FALSE(kg_.IsNeighbor(lebron_, human_));
  PredicateId admires = kg_.AddPredicate("admires");
  kg_.AddTriple(lebron_, admires, human_);
  EXPECT_TRUE(kg_.IsNeighbor(lebron_, human_));
}

TEST_F(KgFixture, InstanceTypesAndSuperClasses) {
  auto types = kg_.InstanceTypes(lebron_);
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(types[0], bball_);
  auto supers = kg_.SuperClasses(bball_);
  ASSERT_EQ(supers.size(), 2u);
  EXPECT_TRUE(kg_.IsSubtypeOf(bball_, human_));
  EXPECT_TRUE(kg_.IsSubtypeOf(bball_, bball_));
  EXPECT_FALSE(kg_.IsSubtypeOf(human_, bball_));
}

TEST_F(KgFixture, SaveLoadRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "kglink_kg_test.tsv")
          .string();
  ASSERT_TRUE(kg_.SaveToFile(path).ok());
  auto loaded = KnowledgeGraph::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_entities(), kg_.num_entities());
  EXPECT_EQ(loaded->num_triples(), kg_.num_triples());
  EXPECT_EQ(loaded->num_predicates(), kg_.num_predicates());
  EntityId lebron2 = loaded->FindByQid("Q5");
  ASSERT_NE(lebron2, kInvalidEntity);
  const Entity& e = loaded->entity(lebron2);
  EXPECT_EQ(e.label, "LeBron James");
  EXPECT_TRUE(e.is_person);
  ASSERT_EQ(e.aliases.size(), 2u);
  EXPECT_EQ(e.aliases[1], "King James");
  EXPECT_TRUE(loaded->IsNeighbor(lebron2, loaded->FindByQid("Q6")));
  std::remove(path.c_str());
}

TEST_F(KgFixture, LoadRejectsCorruptTriples) {
  std::string path =
      (std::filesystem::temp_directory_path() / "kglink_kg_bad.tsv")
          .string();
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("E\tQ1\tthing\t-\t\t\nT\t0\t0\t99\n", f);
  std::fclose(f);
  EXPECT_FALSE(KnowledgeGraph::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(KgTest, DuplicateLabelsAllowed) {
  KnowledgeGraph kg;
  kg.AddEntity({"Q1", "Rust", {}, "", false, false, false});
  kg.AddEntity({"Q2", "Rust", {}, "", false, false, false});
  EXPECT_EQ(kg.FindByLabel("Rust").size(), 2u);
}

}  // namespace
}  // namespace kglink::kg
