// Layer and encoder tests: shapes, determinism, gradient flow through the
// full transformer, and checkpoint round-trips.
#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/checkpoint.h"
#include "nn/tensor.h"
#include "obs/metrics.h"

namespace kglink::nn {
namespace {

EncoderConfig SmallConfig(int vocab = 50) {
  EncoderConfig c;
  c.vocab_size = vocab;
  c.max_seq_len = 32;
  c.dim = 16;
  c.num_heads = 2;
  c.num_layers = 2;
  c.ffn_dim = 24;
  c.dropout = 0.0f;
  return c;
}

TEST(LinearTest, ShapeAndBias) {
  Rng rng(1);
  Linear lin(3, 5, rng, "t");
  Tensor x = Tensor::Zeros({2, 3});
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 5);
  // Zero input -> bias (zero-initialized).
  for (float v : y.data()) EXPECT_EQ(v, 0.0f);
}

TEST(LayerNormLayerTest, NormalizesRows) {
  Rng rng(2);
  LayerNormLayer ln(8, "t");
  Tensor x = Tensor::Randn({4, 8}, 5.0f, rng);
  Tensor y = ln.Forward(x);
  for (int i = 0; i < 4; ++i) {
    float mean = 0, var = 0;
    for (int j = 0; j < 8; ++j) mean += y.data()[i * 8 + j];
    mean /= 8;
    for (int j = 0; j < 8; ++j) {
      float d = y.data()[i * 8 + j] - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(MultiHeadAttentionTest, PreservesShape) {
  Rng rng(3);
  MultiHeadAttention mha(16, 4, rng, "t");
  Tensor x = Tensor::Randn({7, 16}, 1.0f, rng);
  Tensor y = mha.Forward(x);
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 16);
}

TEST(EncoderTest, OutputShapeAndDeterminism) {
  Rng init_rng(4);
  TransformerEncoder enc(SmallConfig(), init_rng);
  std::vector<int> tokens = {2, 5, 9, 13, 3};
  Rng r1(9);
  Rng r2(9);
  Tensor y1 = enc.Forward(tokens, r1, /*training=*/false);
  Tensor y2 = enc.Forward(tokens, r2, /*training=*/false);
  EXPECT_EQ(y1.rows(), 5);
  EXPECT_EQ(y1.cols(), 16);
  for (size_t i = 0; i < y1.data().size(); ++i) {
    EXPECT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(EncoderTest, PositionSensitivity) {
  Rng init_rng(5);
  TransformerEncoder enc(SmallConfig(), init_rng);
  Rng r(1);
  Tensor ab = enc.Forward({7, 8}, r, false);
  Tensor ba = enc.Forward({8, 7}, r, false);
  // Swapping tokens must change the representation (positions matter).
  float diff = 0;
  for (size_t i = 0; i < ab.data().size(); ++i) {
    diff += std::abs(ab.data()[i] - ba.data()[i]);
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(EncoderTest, GradientsReachAllParameters) {
  Rng init_rng(6);
  TransformerEncoder enc(SmallConfig(), init_rng);
  Rng r(2);
  Tensor y = enc.Forward({1, 2, 3, 4, 5, 6}, {0, 0, 0, 1, 1, 1}, r,
                         /*training=*/true);
  Mean(Mul(y, y)).Backward();
  for (auto& p : enc.Parameters()) {
    float sum = 0;
    for (float g : p.tensor.grad()) sum += std::abs(g);
    EXPECT_GT(sum, 0.0f) << "no gradient reached " << p.name;
  }
}

TEST(EncoderTest, SegmentIdsChangeTheEncoding) {
  Rng init_rng(12);
  TransformerEncoder enc(SmallConfig(), init_rng);
  Rng r(1);
  Tensor plain = enc.Forward({5, 6, 7}, r, false);
  Tensor seg0 = enc.Forward({5, 6, 7}, {0, 0, 0}, r, false);
  Tensor seg1 = enc.Forward({5, 6, 7}, {0, 1, 1}, r, false);
  // Empty segments != all-zero segments is allowed to differ only via the
  // segment-0 embedding; different segment assignments must differ.
  float diff = 0;
  for (size_t i = 0; i < seg0.data().size(); ++i) {
    diff += std::abs(seg0.data()[i] - seg1.data()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
  (void)plain;
}

TEST(EncoderTest, DropoutOnlyActiveInTraining) {
  EncoderConfig cfg = SmallConfig();
  cfg.dropout = 0.5f;
  Rng init_rng(7);
  TransformerEncoder enc(cfg, init_rng);
  Rng r1(3);
  Rng r2(4);
  Tensor e1 = enc.Forward({1, 2, 3}, r1, /*training=*/false);
  Tensor e2 = enc.Forward({1, 2, 3}, r2, /*training=*/false);
  for (size_t i = 0; i < e1.data().size(); ++i) {
    EXPECT_EQ(e1.data()[i], e2.data()[i]);
  }
  Rng r3(5);
  Rng r4(6);
  Tensor t1 = enc.Forward({1, 2, 3}, r3, /*training=*/true);
  Tensor t2 = enc.Forward({1, 2, 3}, r4, /*training=*/true);
  float diff = 0;
  for (size_t i = 0; i < t1.data().size(); ++i) {
    diff += std::abs(t1.data()[i] - t2.data()[i]);
  }
  EXPECT_GT(diff, 0.0f);
}

TEST(EncoderTest, TruncatesOverlongSequenceInsteadOfAborting) {
  Rng init_rng(8);
  EncoderConfig cfg = SmallConfig();
  cfg.max_seq_len = 4;
  TransformerEncoder enc(cfg, init_rng);
  auto& truncated =
      obs::MetricsRegistry::Global().GetCounter("encode.truncated");
  int64_t before = truncated.value();

  Rng r(1);
  Tensor full = enc.Forward({1, 2, 3, 4, 5}, r, false);
  EXPECT_EQ(full.rows(), 4);
  EXPECT_EQ(truncated.value(), before + 1);

  // The truncated forward matches encoding the clipped prefix directly.
  Rng r2(1);
  Tensor prefix = enc.Forward({1, 2, 3, 4}, r2, false);
  ASSERT_EQ(full.numel(), prefix.numel());
  for (int64_t i = 0; i < full.numel(); ++i) {
    EXPECT_EQ(full.data()[static_cast<size_t>(i)],
              prefix.data()[static_cast<size_t>(i)]);
  }
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "kglink_ckpt_test.bin")
          .string();
  Rng rng(9);
  TransformerEncoder enc_a(SmallConfig(), rng);
  TransformerEncoder enc_b(SmallConfig(), rng);  // different init
  ASSERT_TRUE(SaveTensors(path, enc_a.Parameters()).ok());
  auto params_b = enc_b.Parameters();
  ASSERT_TRUE(LoadTensors(path, &params_b).ok());
  Rng r1(1);
  Rng r2(1);
  Tensor ya = enc_a.Forward({1, 2, 3}, r1, false);
  Tensor yb = enc_b.Forward({1, 2, 3}, r2, false);
  for (size_t i = 0; i < ya.data().size(); ++i) {
    EXPECT_EQ(ya.data()[i], yb.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  std::string path =
      (std::filesystem::temp_directory_path() / "kglink_ckpt_test2.bin")
          .string();
  Rng rng(10);
  TransformerEncoder small(SmallConfig(), rng);
  ASSERT_TRUE(SaveTensors(path, small.Parameters()).ok());
  EncoderConfig big = SmallConfig();
  big.dim = 32;
  big.ffn_dim = 48;
  TransformerEncoder other(big, rng);
  auto params = other.Parameters();
  EXPECT_FALSE(LoadTensors(path, &params).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsIoError) {
  Rng rng(11);
  TransformerEncoder enc(SmallConfig(), rng);
  auto params = enc.Parameters();
  Status s = LoadTensors("/nonexistent/kglink.bin", &params);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace kglink::nn
