// Unit tests for the error-analysis aggregation over provenance JSONL:
// split accounting (linked/unlinked/degraded, numeric/non-numeric),
// unlabeled columns, malformed-line tolerance, per-type confusion rows and
// both report renderings.
#include <gtest/gtest.h>

#include <string>

#include "eval/explain_report.h"
#include "obs/json_util.h"

namespace kglink::eval {
namespace {

// A provenance stream with every condition represented: two tables (one
// degraded), five labeled columns across the three evidence classes, one
// numeric column, one unlabeled column, and two junk lines.
constexpr char kJsonl[] = R"({"kind":"table","table":"a.csv","degraded":false}
{"kind":"column","table":"a.csv","col":0,"kg_evidence":"linked","numeric":false,"gold":1,"gold_label":"city","pred":1,"pred_label":"city","correct":true}
{"kind":"column","table":"a.csv","col":1,"kg_evidence":"linked","numeric":false,"gold":2,"gold_label":"film","pred":1,"pred_label":"city","correct":false}
{"kind":"column","table":"a.csv","col":2,"kg_evidence":"unlinked","numeric":true,"gold":3,"gold_label":"year","pred":3,"pred_label":"year","correct":true}
{"kind":"column","table":"a.csv","col":3,"kg_evidence":"unlinked","numeric":false}
not json at all
{"kind":"table","table":"b.csv","degraded":true,"degrade_reason":"search unavailable"}
{"kind":"column","table":"b.csv","col":0,"kg_evidence":"degraded","numeric":false,"gold":2,"gold_label":"film","pred":2,"pred_label":"film","correct":true}
{"kind":"column","table":"b.csv","col":1,"kg_evidence":"degraded","numeric":false,"gold":2,"gold_label":"film","pred":0,"pred_label":"person","correct":false}
{"kind":"something_else"}
)";

TEST(ExplainReportTest, AggregatesSplitsAndSkipsJunk) {
  ExplainReport r = BuildExplainReport(kJsonl);
  EXPECT_EQ(r.tables, 2);
  EXPECT_EQ(r.degraded_tables, 1);
  EXPECT_EQ(r.columns, 6);
  EXPECT_EQ(r.unlabeled_columns, 1);
  EXPECT_EQ(r.skipped_lines, 2);

  EXPECT_EQ(r.overall.total, 5);
  EXPECT_EQ(r.overall.correct, 3);
  EXPECT_EQ(r.linked.total, 2);
  EXPECT_EQ(r.linked.correct, 1);
  EXPECT_EQ(r.unlinked.total, 1);
  EXPECT_EQ(r.unlinked.correct, 1);
  EXPECT_EQ(r.degraded.total, 2);
  EXPECT_EQ(r.degraded.correct, 1);
  EXPECT_EQ(r.numeric.total, 1);
  EXPECT_EQ(r.non_numeric.total, 4);
  EXPECT_DOUBLE_EQ(r.overall.accuracy(), 0.6);
}

TEST(ExplainReportTest, PerTypeRowsSortedBySupportWithTopConfusion) {
  ExplainReport r = BuildExplainReport(kJsonl);
  ASSERT_EQ(r.per_type.size(), 3u);
  // "film" has support 3 (one linked miss, two degraded), then city/year.
  EXPECT_EQ(r.per_type[0].gold_label, "film");
  EXPECT_EQ(r.per_type[0].overall.total, 3);
  EXPECT_EQ(r.per_type[0].overall.correct, 1);
  EXPECT_EQ(r.per_type[0].linked.total, 1);
  EXPECT_EQ(r.per_type[0].degraded.total, 2);
  // Its most frequent wrong prediction is one of the two single misses;
  // ties resolve deterministically to the first seen count > 0.
  EXPECT_EQ(r.per_type[0].top_confusion_count, 1);
  EXPECT_FALSE(r.per_type[0].top_confusion.empty());
  // Ties in support fall back to label order.
  EXPECT_EQ(r.per_type[1].gold_label, "city");
  EXPECT_EQ(r.per_type[2].gold_label, "year");
  EXPECT_EQ(r.per_type[2].top_confusion, "");
}

TEST(ExplainReportTest, EmptyAndAllJunkInputs) {
  ExplainReport empty = BuildExplainReport("");
  EXPECT_EQ(empty.tables, 0);
  EXPECT_EQ(empty.columns, 0);
  EXPECT_EQ(empty.skipped_lines, 0);

  ExplainReport junk = BuildExplainReport("{]\nnope\n");
  EXPECT_EQ(junk.skipped_lines, 2);
  EXPECT_EQ(junk.overall.total, 0);
  EXPECT_DOUBLE_EQ(junk.overall.accuracy(), 0.0);
}

TEST(ExplainReportTest, GoldLabelFallsBackToNumericId) {
  ExplainReport r = BuildExplainReport(
      "{\"kind\":\"column\",\"kg_evidence\":\"linked\",\"gold\":7,"
      "\"correct\":true}\n");
  ASSERT_EQ(r.per_type.size(), 1u);
  EXPECT_EQ(r.per_type[0].gold_label, "label#7");
}

TEST(ExplainReportTest, TextReportMentionsEveryCondition) {
  std::string text = FormatExplainReport(BuildExplainReport(kJsonl));
  EXPECT_NE(text.find("overall"), std::string::npos);
  EXPECT_NE(text.find("linked"), std::string::npos);
  EXPECT_NE(text.find("unlinked"), std::string::npos);
  EXPECT_NE(text.find("degraded"), std::string::npos);
  EXPECT_NE(text.find("film"), std::string::npos);
  EXPECT_NE(text.find("2 lines skipped"), std::string::npos);
}

TEST(ExplainReportTest, JsonReportIsValidAndRoundTrips) {
  std::string json = ExplainReportJson(BuildExplainReport(kJsonl));
  ASSERT_TRUE(obs::IsValidJson(json)) << json;
  std::optional<obs::JsonValue> v = obs::ParseJson(json);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->NumberOr("tables", 0), 2.0);
  const obs::JsonValue* overall = v->Find("overall");
  ASSERT_NE(overall, nullptr);
  EXPECT_DOUBLE_EQ(overall->NumberOr("total", 0), 5.0);
  EXPECT_DOUBLE_EQ(overall->NumberOr("accuracy", 0), 0.6);
  const obs::JsonValue* per_type = v->Find("per_type");
  ASSERT_NE(per_type, nullptr);
  ASSERT_EQ(per_type->array.size(), 3u);
  EXPECT_EQ(per_type->array[0].StringOr("gold_label", ""), "film");
}

}  // namespace
}  // namespace kglink::eval
