// Fault-injection framework tests: deterministic seeded trip streams,
// spec parsing, retry/backoff policy, per-table budgets, and the linker
// pipeline's degraded (PLM-only) fallback.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "linker/pipeline.h"
#include "obs/metrics.h"
#include "robust/circuit_breaker.h"
#include "robust/fault_injector.h"
#include "robust/retry.h"
#include "search/search_engine.h"
#include "util/deadline.h"
#include "util/stopwatch.h"

namespace kglink::robust {
namespace {

// Every test leaves the global injector disabled.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disable(); }
};

TEST_F(FaultInjectorTest, SiteNamesRoundTrip) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    FaultSite site = static_cast<FaultSite>(i);
    auto parsed = FaultSiteFromName(FaultSiteName(site));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(FaultSiteFromName("no.such.site").has_value());
}

TEST_F(FaultInjectorTest, DisabledByDefaultAndAfterDisable) {
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_FALSE(MaybeInject(FaultSite::kSearchTopK));
  ASSERT_TRUE(FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0", 1)
                  .ok());
  EXPECT_TRUE(FaultInjector::Enabled());
  FaultInjector::Global().Disable();
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_FALSE(MaybeInject(FaultSite::kSearchTopK));
}

TEST_F(FaultInjectorTest, ZeroProbabilityRulesStayDisabled) {
  ASSERT_TRUE(FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:0.0,io.read:0", 1)
                  .ok());
  EXPECT_FALSE(FaultInjector::Enabled());
}

TEST_F(FaultInjectorTest, TripStreamIsDeterministicPerSeed) {
  auto roll = [](uint64_t seed) {
    FaultInjector::Global().Configure(
        {{FaultSite::kSearchTopK, {0.5, 0}}}, seed);
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(FaultInjector::Global().ShouldFail(
          FaultSite::kSearchTopK));
    }
    return out;
  };
  std::vector<bool> a = roll(7);
  std::vector<bool> b = roll(7);
  std::vector<bool> c = roll(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Roughly half the rolls trip at p=0.5 (loose deterministic bound).
  int trips = 0;
  for (bool t : a) trips += t ? 1 : 0;
  EXPECT_GT(trips, 50);
  EXPECT_LT(trips, 150);
}

TEST_F(FaultInjectorTest, SitesHaveIndependentStreams) {
  FaultInjector::Global().Configure(
      {{FaultSite::kSearchTopK, {0.5, 0}}, {FaultSite::kIoRead, {0.5, 0}}},
      7);
  std::vector<bool> topk_interleaved, topk_alone;
  for (int i = 0; i < 100; ++i) {
    topk_interleaved.push_back(
        FaultInjector::Global().ShouldFail(FaultSite::kSearchTopK));
    FaultInjector::Global().ShouldFail(FaultSite::kIoRead);
  }
  FaultInjector::Global().Configure(
      {{FaultSite::kSearchTopK, {0.5, 0}}, {FaultSite::kIoRead, {0.5, 0}}},
      7);
  for (int i = 0; i < 100; ++i) {
    topk_alone.push_back(
        FaultInjector::Global().ShouldFail(FaultSite::kSearchTopK));
  }
  // Interleaving other sites' rolls does not perturb a site's stream.
  EXPECT_EQ(topk_interleaved, topk_alone);
}

TEST_F(FaultInjectorTest, SpecParsing) {
  auto& inj = FaultInjector::Global();
  EXPECT_TRUE(inj.ConfigureFromSpec("", 1).ok());  // empty clears
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_TRUE(
      inj.ConfigureFromSpec("search.topk:0.1,io.read:0.5:250", 1).ok());
  EXPECT_TRUE(FaultInjector::Enabled());
  EXPECT_FALSE(inj.ConfigureFromSpec("bogus.site:0.5", 1).ok());
  EXPECT_FALSE(inj.ConfigureFromSpec("search.topk:1.5", 1).ok());
  EXPECT_FALSE(inj.ConfigureFromSpec("search.topk:-0.1", 1).ok());
  EXPECT_FALSE(inj.ConfigureFromSpec("search.topk:0.5:-3", 1).ok());
  EXPECT_FALSE(inj.ConfigureFromSpec("search.topk", 1).ok());
  EXPECT_FALSE(inj.ConfigureFromSpec("search.topk:0.5:1:2", 1).ok());
}

TEST_F(FaultInjectorTest, LatencyRuleSleepsButSucceeds) {
  FaultInjector::Global().Configure(
      {{FaultSite::kIoRead, {1.0, 100}}}, 3);
  // probability 1 + latency: every call trips, none fails.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(MaybeInject(FaultSite::kIoRead));
  }
  EXPECT_EQ(FaultInjector::Global().trip_count(FaultSite::kIoRead), 5);
}

TEST(RetryPolicyTest, BackoffGrowsAndIsCappedWithJitterBounds) {
  RetryPolicy policy;  // base 100us, x2, cap 5000us
  for (double jitter : {0.0, 0.5, 0.999}) {
    int64_t prev = 0;
    for (int attempt = 1; attempt <= 10; ++attempt) {
      int64_t b = policy.BackoffMicros(attempt, jitter);
      EXPECT_GE(b, prev);  // non-decreasing
      EXPECT_LE(b, policy.max_backoff_us);
      prev = b;
    }
    // First retry: within [base/2, base).
    EXPECT_GE(policy.BackoffMicros(1, jitter), policy.base_backoff_us / 2);
    EXPECT_LT(policy.BackoffMicros(1, jitter), policy.base_backoff_us);
  }
}

TEST_F(FaultInjectorTest, TableOpContextPassesThroughWhenDisabled) {
  TableOpContext ctx(RetryPolicy{}, TableBudget{}, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ctx.Attempt(FaultSite::kSearchTopK));
  }
  EXPECT_FALSE(ctx.degraded());
  EXPECT_EQ(ctx.retries_used(), 0);
}

TEST_F(FaultInjectorTest, TableOpContextRetriesTransientFaults) {
  // p=0.5 with 4 attempts: most ops succeed after a few retries.
  FaultInjector::Global().Configure(
      {{FaultSite::kSearchTopK, {0.5, 0}}}, 11);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_us = 1;  // keep the test fast
  policy.max_backoff_us = 2;
  TableBudget budget;
  budget.max_retries = 1000000;
  budget.max_failed_ops = 1000000;
  TableOpContext ctx(policy, budget, 2);
  int ok = 0;
  for (int i = 0; i < 100; ++i) {
    ok += ctx.Attempt(FaultSite::kSearchTopK) ? 1 : 0;
  }
  EXPECT_GT(ok, 80);          // 1 - 0.5^4 ~ 94% per op
  EXPECT_GT(ctx.retries_used(), 0);
  EXPECT_FALSE(ctx.degraded());
}

TEST_F(FaultInjectorTest, TableOpContextDegradesOnHardFailure) {
  FaultInjector::Global().Configure(
      {{FaultSite::kSearchTopK, {1.0, 0}}}, 5);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff_us = 1;
  policy.max_backoff_us = 2;
  TableOpContext ctx(policy, TableBudget{}, 3);  // 0 hard failures allowed
  EXPECT_FALSE(ctx.Attempt(FaultSite::kSearchTopK));
  EXPECT_TRUE(ctx.degraded());
  EXPECT_STREQ(ctx.degrade_reason(), "fault budget exhausted");
  // Degraded contexts short-circuit.
  EXPECT_FALSE(ctx.Attempt(FaultSite::kSearchTopK));
}

TEST_F(FaultInjectorTest, TableOpContextDegradesWhenRetryBudgetExhausted) {
  FaultInjector::Global().Configure(
      {{FaultSite::kSearchTopK, {1.0, 0}}}, 5);
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_us = 1;
  policy.max_backoff_us = 2;
  TableBudget budget;
  budget.max_retries = 3;
  TableOpContext ctx(policy, budget, 3);
  EXPECT_FALSE(ctx.Attempt(FaultSite::kSearchTopK));
  EXPECT_TRUE(ctx.degraded());
  EXPECT_STREQ(ctx.degrade_reason(), "retry budget exhausted");
}

TEST_F(FaultInjectorTest, WithRetrySurvivesTransientInjection) {
  FaultInjector::Global().Configure({{FaultSite::kIoRead, {0.5, 0}}}, 9);
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_us = 1;
  policy.max_backoff_us = 2;
  int calls = 0;
  int successes = 0;
  for (int i = 0; i < 50; ++i) {
    Status s = WithRetry(FaultSite::kIoRead, policy, [&] {
      ++calls;
      return Status::Ok();
    });
    successes += s.ok() ? 1 : 0;
  }
  // p_hard = 0.5^8 per op; deterministic for this seed (one hard failure).
  EXPECT_GE(successes, 48);
  EXPECT_GT(calls, 0);
}

TEST_F(FaultInjectorTest, WithRetryReturnsInjectedErrorOnHardFailure) {
  FaultInjector::Global().Configure({{FaultSite::kIoRead, {1.0, 0}}}, 9);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_us = 1;
  policy.max_backoff_us = 2;
  bool called = false;
  Status s = WithRetry(FaultSite::kIoRead, policy, [&] {
    called = true;
    return Status::Ok();
  });
  EXPECT_FALSE(called);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Degraded pipeline behaviour on a hand-built KG (mirrors linker_test's
// fixture world).

class DegradedPipelineTest : public FaultInjectorTest {
 protected:
  void SetUp() override {
    human_ = kg_.AddEntity({"T1", "human", {}, "", true, false, false});
    album_type_ = kg_.AddEntity({"T3", "album", {}, "", true, false, false});
    peter_ = kg_.AddEntity(
        {"Q1", "Peter Steele", {}, "", false, true, false});
    rust_ = kg_.AddEntity({"Q2", "Rust", {}, "", false, false, false});
    mia_ = kg_.AddEntity({"Q4", "Mia Torv", {}, "", false, true, false});
    echo_ = kg_.AddEntity({"Q5", "Echo", {}, "", false, false, false});
    kg::PredicateId performer = kg_.AddPredicate("performer");
    kg_.AddTriple(peter_, kg::KnowledgeGraph::kInstanceOf, human_);
    kg_.AddTriple(mia_, kg::KnowledgeGraph::kInstanceOf, human_);
    kg_.AddTriple(rust_, kg::KnowledgeGraph::kInstanceOf, album_type_);
    kg_.AddTriple(echo_, kg::KnowledgeGraph::kInstanceOf, album_type_);
    kg_.AddTriple(rust_, performer, peter_);
    kg_.AddTriple(echo_, performer, mia_);
    engine_ = std::make_unique<search::SearchEngine>(
        search::IndexKnowledgeGraph(kg_));
    tbl_ = table::Table::FromStrings(
        "mixed", {{"Rust", "Peter Steele", "10"},
                  {"Echo", "Mia Torv", "30"}});
  }

  kg::KnowledgeGraph kg_;
  kg::EntityId human_, album_type_, peter_, rust_, mia_, echo_;
  std::unique_ptr<search::SearchEngine> engine_;
  table::Table tbl_;
};

TEST_F(DegradedPipelineTest, AllFaultsYieldDegradedPlmOnlyTable) {
  obs::MetricsRegistry::Global().GetCounter("robust.degraded_tables")
      .Reset();
  FaultInjector::Global().Configure(
      {{FaultSite::kSearchTopK, {1.0, 0}}}, 5);
  linker::LinkerConfig config;
  config.retry.max_attempts = 2;
  config.retry.base_backoff_us = 1;
  config.retry.max_backoff_us = 2;
  linker::KgPipeline pipeline(&kg_, engine_.get(), config);
  linker::ProcessedTable out = pipeline.Process(tbl_);

  EXPECT_TRUE(out.degraded);
  // Rows kept in original order, invariants intact.
  EXPECT_EQ(out.kept_rows, (std::vector<int>{0, 1}));
  EXPECT_EQ(out.filtered.num_rows(), 2);
  ASSERT_EQ(out.row_links.size(), 2u);
  ASSERT_EQ(out.row_links[0].cells.size(), 3u);
  // No KG evidence anywhere...
  ASSERT_EQ(out.columns.size(), 3u);
  EXPECT_TRUE(out.columns[0].candidate_types.empty());
  EXPECT_FALSE(out.columns[0].has_feature);
  EXPECT_TRUE(out.columns[1].candidate_types.empty());
  // ...but numeric stats survive (they need no KG).
  EXPECT_TRUE(out.columns[2].is_numeric);
  EXPECT_EQ(out.columns[2].stats.mean, 20.0);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetCounter("robust.degraded_tables")
                .value(),
            1);
}

TEST_F(DegradedPipelineTest, NoFaultsMatchesBaselineOutput) {
  linker::KgPipeline pipeline(&kg_, engine_.get(), {});
  linker::ProcessedTable baseline = pipeline.Process(tbl_);
  ASSERT_FALSE(baseline.degraded);
  ASSERT_FALSE(baseline.columns.empty());

  // Faults configured at probability 0 must not change anything.
  FaultInjector::Global().Configure(
      {{FaultSite::kSearchTopK, {0.0, 0}}}, 5);
  linker::ProcessedTable again = pipeline.Process(tbl_);
  EXPECT_FALSE(again.degraded);
  ASSERT_EQ(again.columns.size(), baseline.columns.size());
  for (size_t c = 0; c < baseline.columns.size(); ++c) {
    EXPECT_EQ(again.columns[c].candidate_type_labels,
              baseline.columns[c].candidate_type_labels);
    EXPECT_EQ(again.columns[c].feature_sequence,
              baseline.columns[c].feature_sequence);
  }
}

TEST_F(DegradedPipelineTest, SoftKgNeighborFaultsDegradeEvidenceNotTables) {
  // kg.neighbors is a soft site: with every neighbour lookup tripping, no
  // candidate survives Eq. 3 pruning (no overlap evidence), but the table
  // is still processed normally — not degraded.
  FaultInjector::Global().Configure(
      {{FaultSite::kKgNeighbors, {1.0, 0}}}, 5);
  linker::KgPipeline pipeline(&kg_, engine_.get(), {});
  linker::ProcessedTable out = pipeline.Process(tbl_);
  EXPECT_FALSE(out.degraded);
  for (const auto& col : out.columns) {
    EXPECT_TRUE(col.candidate_types.empty());
  }
}

// --- Deadline- and cancellation-aware retries (serving path) ------------

TEST_F(FaultInjectorTest, ExpiredRequestDegradesAttemptEvenWithoutFaults) {
  // Deadline enforcement is not gated on fault injection being enabled:
  // an expired request degrades the very first Attempt.
  RequestContext rc;
  rc.deadline = Deadline::Expired();
  TableOpContext ctx({}, {}, 1, &rc);
  EXPECT_FALSE(ctx.Attempt(FaultSite::kSearchTopK));
  EXPECT_TRUE(ctx.degraded());
  EXPECT_STREQ(ctx.degrade_reason(), "deadline");
}

TEST_F(FaultInjectorTest, CancellationWinsOverExpiredDeadline) {
  RequestContext rc;
  rc.deadline = Deadline::Expired();
  rc.cancel = CancellationToken::Cancellable();
  rc.cancel.Cancel();
  TableOpContext ctx({}, {}, 1, &rc);
  EXPECT_FALSE(ctx.Attempt(FaultSite::kPredict));
  EXPECT_TRUE(ctx.degraded());
  EXPECT_STREQ(ctx.degrade_reason(), "cancelled");
}

TEST_F(FaultInjectorTest, RetryStopsBeforeBackoffThatWouldMissDeadline) {
  // Every attempt fails and the policy's backoff (>= 25ms with jitter) can
  // never finish inside the 5ms request budget: the retry loop must give
  // up immediately with reason "deadline" instead of sleeping past it.
  ASSERT_TRUE(FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:1.0", 11)
                  .ok());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_us = 50000;
  policy.max_backoff_us = 50000;
  TableBudget budget;
  budget.max_failed_ops = 5;
  RequestContext rc;
  rc.deadline = Deadline::AfterMillis(5);
  TableOpContext ctx(policy, budget, 1, &rc);

  Stopwatch watch;
  EXPECT_FALSE(ctx.Attempt(FaultSite::kSearchTopK));
  EXPECT_TRUE(ctx.degraded());
  EXPECT_STREQ(ctx.degrade_reason(), "deadline");
  // Gave up without serving the 25-50ms backoff sleep.
  EXPECT_LT(watch.ElapsedSeconds(), 0.020);
}

TEST_F(FaultInjectorTest, WithRetryShortCircuitsExpiredRequest) {
  RequestContext rc;
  rc.deadline = Deadline::Expired();
  int calls = 0;
  Status s = WithRetry(
      FaultSite::kIoRead, {},
      [&] {
        ++calls;
        return Status::Ok();
      },
      &rc);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 0);
}

TEST_F(FaultInjectorTest, WithRetryStopsRetryingAtTheDeadline) {
  // Injection suppresses every attempt; the first backoff cannot fit in
  // the remaining budget, so the result is kDeadlineExceeded — promptly —
  // rather than the kIoError a fully exhausted retry loop would produce.
  ASSERT_TRUE(
      FaultInjector::Global().ConfigureFromSpec("io.read:1.0", 11).ok());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_us = 50000;
  policy.max_backoff_us = 50000;
  RequestContext rc;
  rc.deadline = Deadline::AfterMillis(5);
  Stopwatch watch;
  Status s = WithRetry(
      FaultSite::kIoRead, policy, [] { return Status::Ok(); }, &rc);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(watch.ElapsedSeconds(), 0.020);
}

TEST_F(FaultInjectorTest, PerRequestStreamsAreScheduleIndependent) {
  // Two contexts for the same stream key draw identical fault sequences
  // even when unrelated traffic hammers the injector's shared streams in
  // between — the property that makes concurrent chaos deterministic.
  ASSERT_TRUE(FaultInjector::Global()
                  .ConfigureFromSpec("search.topk:0.5", 42)
                  .ok());
  RetryPolicy one_shot;
  one_shot.max_attempts = 1;  // one draw per Attempt
  TableBudget roomy;
  roomy.max_failed_ops = 1000;
  roomy.max_retries = 100000;

  auto draw = [&](uint64_t stream_key) {
    RequestContext rc;
    rc.stream_key = stream_key;
    TableOpContext ctx(one_shot, roomy, 1, &rc);
    std::vector<bool> out;
    for (int i = 0; i < 40; ++i) {
      out.push_back(ctx.Attempt(FaultSite::kSearchTopK));
    }
    return out;
  };

  std::vector<bool> first = draw(7);
  // Unrelated shared-stream traffic between the two same-key runs.
  for (int i = 0; i < 100; ++i) {
    FaultInjector::Global().ShouldFail(FaultSite::kSearchTopK);
  }
  std::vector<bool> second = draw(7);
  std::vector<bool> other = draw(8);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

TEST_F(FaultInjectorTest, SoftFaultDrawsWithoutBudgetOrDegrade) {
  ASSERT_TRUE(FaultInjector::Global()
                  .ConfigureFromSpec("kg.neighbors:1.0", 11)
                  .ok());
  TableOpContext ctx({}, {}, 1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ctx.SoftFault(FaultSite::kKgNeighbors));
  }
  EXPECT_EQ(ctx.failed_ops(), 0);
  EXPECT_EQ(ctx.retries_used(), 0);
  EXPECT_FALSE(ctx.degraded());

  FaultInjector::Global().Disable();
  EXPECT_FALSE(ctx.SoftFault(FaultSite::kKgNeighbors));
}

// --- Circuit breakers ----------------------------------------------------

CircuitBreakerOptions FastBreaker() {
  CircuitBreakerOptions o;
  o.window = 8;
  o.min_samples = 4;
  o.failure_ratio = 0.5;
  o.open_cooldown_us = 2000;
  o.half_open_probes = 1;
  return o;
}

TEST(CircuitBreakerTest, TripsOpenAndRecoversThroughHalfOpen) {
  CircuitBreaker b(FaultSite::kSearchTopK, FastBreaker());
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(b.Allow());
    b.RecordFailure();
  }
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 1);
  EXPECT_FALSE(b.Allow());  // fail fast while the cooldown runs

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(b.Allow());  // cooldown elapsed: one half-open probe
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  b.RecordSuccess();
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  // The window was cleared on close: old failures do not linger.
  b.RecordFailure();
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  CircuitBreaker b(FaultSite::kIoRead, FastBreaker());
  for (int i = 0; i < 4; ++i) b.RecordFailure();
  ASSERT_EQ(b.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(b.Allow());
  b.RecordFailure();
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 2);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOnlyConfiguredProbes) {
  CircuitBreaker b(FaultSite::kIoWrite, FastBreaker());
  for (int i = 0; i < 4; ++i) b.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(b.Allow());   // the single probe slot
  EXPECT_FALSE(b.Allow());  // concurrent calls keep failing fast
}

TEST(CircuitBreakerTest, StaysClosedBelowFailureRatio) {
  CircuitBreaker b(FaultSite::kPredict, FastBreaker());
  for (int i = 0; i < 50; ++i) {
    b.RecordSuccess();
    b.RecordSuccess();
    b.RecordSuccess();
    b.RecordFailure();  // 25% failure rate, threshold is 50%
  }
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.trips(), 0);
}

TEST(CircuitBreakerTest, RegistryGatesAndReconfiguresInPlace) {
  EXPECT_FALSE(BreakerRegistry::Enabled());
  CircuitBreaker& before =
      BreakerRegistry::Global().ForSite(FaultSite::kSearchTopK);
  BreakerRegistry::Global().Enable(FastBreaker());
  EXPECT_TRUE(BreakerRegistry::Enabled());
  CircuitBreaker& after =
      BreakerRegistry::Global().ForSite(FaultSite::kSearchTopK);
  // Enable reconfigures the existing objects; references never dangle.
  EXPECT_EQ(&before, &after);

  for (int i = 0; i < 4; ++i) after.RecordFailure();
  EXPECT_EQ(after.state(), BreakerState::kOpen);
  BreakerRegistry::Global().Disable();
  EXPECT_FALSE(BreakerRegistry::Enabled());
  EXPECT_EQ(after.state(), BreakerState::kClosed);
}

}  // namespace
}  // namespace kglink::robust
