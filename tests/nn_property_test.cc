// Algebraic property tests of the tensor library and layers: linearity,
// distributivity, normalization invariances, dropout statistics, and
// optimizer behaviour — parameterized over shapes and magnitudes.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace kglink::nn {
namespace {

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  float m = 0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

class MatMulPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulPropertyTest, DistributesOverAddition) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 100 + k * 10 + n));
  Tensor a = Tensor::Randn({m, k}, 1.0f, rng);
  Tensor b = Tensor::Randn({k, n}, 1.0f, rng);
  Tensor c = Tensor::Randn({k, n}, 1.0f, rng);
  Tensor lhs = MatMul(a, Add(b, c));
  Tensor rhs = Add(MatMul(a, b), MatMul(a, c));
  EXPECT_LT(MaxAbsDiff(lhs, rhs), 1e-4f * k);
}

TEST_P(MatMulPropertyTest, TransposeReversesProduct) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m + k + n));
  Tensor a = Tensor::Randn({m, k}, 1.0f, rng);
  Tensor b = Tensor::Randn({k, n}, 1.0f, rng);
  Tensor lhs = Transpose(MatMul(a, b));
  Tensor rhs = MatMul(Transpose(b), Transpose(a));
  EXPECT_LT(MaxAbsDiff(lhs, rhs), 1e-4f * k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulPropertyTest,
    ::testing::Combine(::testing::Values(1, 3, 8), ::testing::Values(2, 5),
                       ::testing::Values(1, 4, 7)));

TEST(LayerNormPropertyTest, ShiftAndScaleInvariant) {
  Rng rng(3);
  Tensor gamma = Tensor::Full({1, 6}, 1.0f);
  Tensor beta = Tensor::Zeros({1, 6});
  Tensor x = Tensor::Randn({4, 6}, 1.0f, rng);
  Tensor shifted = AddScalar(Scale(x, 5.0f), 3.0f);
  Tensor a = LayerNorm(x, gamma, beta);
  Tensor b = LayerNorm(shifted, gamma, beta);
  // Same direction per row after normalization (up to eps effects).
  EXPECT_LT(MaxAbsDiff(a, b), 5e-3f);
}

TEST(DropoutPropertyTest, PreservesExpectationAndZeroes) {
  Rng rng(4);
  Tensor x = Tensor::Full({1, 20000}, 1.0f, /*requires_grad=*/false);
  for (float p : {0.1f, 0.5f, 0.8f}) {
    Rng drop_rng(static_cast<uint64_t>(p * 100));
    Tensor y = Dropout(x, p, drop_rng, /*training=*/true);
    double sum = 0;
    int64_t zeros = 0;
    for (float v : y.data()) {
      sum += v;
      if (v == 0.0f) ++zeros;
    }
    // Inverted dropout: E[y] = x.
    EXPECT_NEAR(sum / static_cast<double>(y.numel()), 1.0, 0.05);
    EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.numel()),
                p, 0.03);
  }
}

TEST(DropoutPropertyTest, IdentityAtEval) {
  Rng rng(5);
  Tensor x = Tensor::Randn({3, 4}, 1.0f, rng);
  Rng drop_rng(1);
  Tensor y = Dropout(x, 0.5f, drop_rng, /*training=*/false);
  EXPECT_EQ(MaxAbsDiff(x, y), 0.0f);
}

TEST(SoftmaxPropertyTest, OrderPreserving) {
  Rng rng(6);
  Tensor x = Tensor::Randn({1, 10}, 2.0f, rng);
  Tensor y = Softmax(x);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (x.data()[i] > x.data()[j]) {
        EXPECT_GE(y.data()[i], y.data()[j]);
      }
    }
  }
}

TEST(CrossEntropyPropertyTest, LowerForCorrectConfidentPrediction) {
  Tensor confident = Tensor::FromData({1, 3}, {8.0f, 0.0f, 0.0f});
  Tensor uncertain = Tensor::FromData({1, 3}, {0.1f, 0.0f, 0.0f});
  Tensor wrong = Tensor::FromData({1, 3}, {0.0f, 8.0f, 0.0f});
  float c = CrossEntropy(confident, {0}).item();
  float u = CrossEntropy(uncertain, {0}).item();
  float w = CrossEntropy(wrong, {0}).item();
  EXPECT_LT(c, u);
  EXPECT_LT(u, w);
}

class AdamPropertyTest : public ::testing::TestWithParam<float> {};

TEST_P(AdamPropertyTest, ConvergesOnShiftedQuadratic) {
  float target = GetParam();
  Tensor x = Tensor::Scalar(0.0f, /*requires_grad=*/true);
  AdamWOptions opts;
  opts.lr = 0.05f;
  opts.weight_decay = 0.0f;
  AdamW opt({{"x", x}}, opts);
  Tensor t = Tensor::Scalar(target);
  for (int i = 0; i < 800; ++i) {
    opt.ZeroGrad();
    MseLoss(x, t).Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.item(), target, 0.05f);
}

INSTANTIATE_TEST_SUITE_P(Targets, AdamPropertyTest,
                         ::testing::Values(-3.0f, 0.5f, 7.0f));

TEST(RngForkTest, SubstreamsAreIndependent) {
  Rng parent(9);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child1.Next() == child2.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(EncoderPropertyTest, LongerSequenceKeepsPrefixShape) {
  EncoderConfig cfg;
  cfg.vocab_size = 30;
  cfg.max_seq_len = 16;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_dim = 8;
  cfg.dropout = 0;
  Rng init(10);
  TransformerEncoder enc(cfg, init);
  Rng r(1);
  for (int len : {1, 2, 8, 16}) {
    std::vector<int> tokens(static_cast<size_t>(len), 3);
    Tensor h = enc.Forward(tokens, r, false);
    EXPECT_EQ(h.rows(), len);
    EXPECT_EQ(h.cols(), 8);
  }
}

}  // namespace
}  // namespace kglink::nn
